#include <gtest/gtest.h>

#include <cmath>

#include "data/scale.hpp"
#include "data/sparse.hpp"
#include "data/synthetic.hpp"
#include "data/zoo.hpp"
#include "util/rng.hpp"

namespace {

using namespace svmdata;
using namespace svmdata::synthetic;

double positive_fraction(const Dataset& d) {
  std::size_t pos = 0;
  for (const double y : d.y)
    if (y > 0) ++pos;
  return static_cast<double>(pos) / static_cast<double>(d.size());
}

TEST(Blobs, ShapeAndLabels) {
  const Dataset d = gaussian_blobs({.n = 500, .d = 10, .separation = 3.0, .seed = 1});
  EXPECT_EQ(d.size(), 500u);
  EXPECT_LE(d.dim(), 10u);
  EXPECT_NO_THROW(d.validate());
  EXPECT_NEAR(positive_fraction(d), 0.5, 0.1);
}

TEST(Blobs, DeterministicInSeed) {
  const Dataset a = gaussian_blobs({.n = 100, .d = 5, .separation = 2.0, .seed = 9});
  const Dataset b = gaussian_blobs({.n = 100, .d = 5, .separation = 2.0, .seed = 9});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.y[i], b.y[i]);
    ASSERT_EQ(a.X.row(i).size(), b.X.row(i).size());
    for (std::size_t k = 0; k < a.X.row(i).size(); ++k)
      EXPECT_EQ(a.X.row(i)[k].value, b.X.row(i)[k].value);
  }
}

TEST(Blobs, SeparationMakesClassesLinearlySeparable) {
  // With a huge margin, the class means should be far apart along some axis:
  // verify mean distance >> intra-class spread.
  const Dataset d = gaussian_blobs({.n = 400, .d = 8, .separation = 10.0, .seed = 2});
  std::vector<double> mean_pos(8, 0.0);
  std::vector<double> mean_neg(8, 0.0);
  double np = 0;
  double nn = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (const Feature& f : d.X.row(i))
      (d.y[i] > 0 ? mean_pos : mean_neg)[f.index] += f.value;
    (d.y[i] > 0 ? np : nn) += 1.0;
  }
  double dist_sq = 0.0;
  for (std::size_t j = 0; j < 8; ++j) {
    const double diff = mean_pos[j] / np - mean_neg[j] / nn;
    dist_sq += diff * diff;
  }
  EXPECT_GT(std::sqrt(dist_sq), 8.0);  // ~separation, against unit noise
}

TEST(Blobs, LabelNoiseFlipsRoughlyRequestedFraction) {
  const Dataset clean = gaussian_blobs({.n = 2000, .d = 4, .separation = 3.0,
                                        .label_noise = 0.0, .seed = 5});
  const Dataset noisy = gaussian_blobs({.n = 2000, .d = 4, .separation = 3.0,
                                        .label_noise = 0.2, .seed = 5});
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < clean.size(); ++i)
    if (clean.y[i] != noisy.y[i]) ++flipped;
  EXPECT_NEAR(static_cast<double>(flipped) / 2000.0, 0.2, 0.04);
}

TEST(Rings, RadiiMatchClasses) {
  const Dataset d = two_rings({.n = 600, .d = 3, .inner_radius = 1.0, .gap = 2.0,
                               .thickness = 0.05, .seed = 3});
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double r = std::sqrt(CsrMatrix::squared_norm(d.X.row(i)));
    if (d.y[i] > 0)
      EXPECT_NEAR(r, 1.0, 0.4);
    else
      EXPECT_NEAR(r, 3.0, 0.4);
  }
}

TEST(SparseBinary, DensityMatchesNnzPerRow) {
  const Dataset d =
      sparse_binary({.n = 200, .d = 5000, .nnz_per_row = 40, .pool_overlap = 0.3, .seed = 4});
  EXPECT_EQ(d.X.nonzeros(), 200u * 40u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.X.row(i).size(), 40u);
    for (const Feature& f : d.X.row(i)) EXPECT_DOUBLE_EQ(f.value, 1.0);
  }
  EXPECT_LT(d.X.density(), 0.01);
}

TEST(DenseTabular, IsFullyDense) {
  const Dataset d = dense_tabular({.n = 100, .d = 28, .overlap = 0.1, .seed = 6});
  // Gaussian features are almost surely nonzero in every coordinate.
  EXPECT_GT(d.X.density(), 0.99);
  EXPECT_EQ(d.dim(), 28u);
}

TEST(DigitsLike, NonNegativeAndSparse) {
  const Dataset d = digits_like({.n = 150, .d = 784, .noise = 0.3, .seed = 7});
  for (std::size_t i = 0; i < d.size(); ++i)
    for (const Feature& f : d.X.row(i)) EXPECT_GE(f.value, 0.0);
  EXPECT_LT(d.X.density(), 0.6);
  EXPECT_GT(d.X.density(), 0.05);
}

TEST(Zoo, HasElevenEntriesWithTableIIIParams) {
  const auto& entries = zoo();
  EXPECT_EQ(entries.size(), 11u);
  const ZooEntry& higgs = zoo_entry("higgs");
  EXPECT_EQ(higgs.paper_train_size, 2600000u);
  EXPECT_DOUBLE_EQ(higgs.C, 32.0);
  EXPECT_DOUBLE_EQ(higgs.sigma_sq, 64.0);
  EXPECT_DOUBLE_EQ(higgs.gamma(), 1.0 / 64.0);
  const ZooEntry& url = zoo_entry("url");
  EXPECT_EQ(url.paper_train_size, 2300000u);
  EXPECT_DOUBLE_EQ(url.C, 10.0);
}

TEST(Zoo, UnknownNameListsAlternatives) {
  try {
    (void)zoo_entry("imagenet");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("higgs"), std::string::npos);
  }
}

TEST(Zoo, GeneratesEveryEntryAtTinyScale) {
  for (const ZooEntry& entry : zoo()) {
    const Dataset train = make_train(entry, 0.05);
    EXPECT_GE(train.size(), 8u) << entry.name;
    EXPECT_NO_THROW(train.validate()) << entry.name;
    const Dataset test = make_test(entry, 0.05);
    if (entry.default_test_size > 0) EXPECT_GE(test.size(), 8u) << entry.name;
  }
}

TEST(Zoo, ScaleMultipliesSize) {
  const ZooEntry& e = zoo_entry("usps");
  EXPECT_EQ(make_train(e, 0.1).size(), e.default_train_size / 10);
  EXPECT_EQ(make_train(e, 1.0).size(), e.default_train_size);
}

TEST(Zoo, TrainAndTestAreDifferentDraws) {
  const ZooEntry& e = zoo_entry("mnist");
  const Dataset train = make_train(e, 0.1);
  const Dataset test = make_test(e, 0.1);
  ASSERT_GT(train.size(), 0u);
  ASSERT_GT(test.size(), 0u);
  // First rows should differ (different seeds).
  const auto a = train.X.row(0);
  const auto b = test.X.row(0);
  bool different = a.size() != b.size();
  for (std::size_t k = 0; !different && k < a.size(); ++k)
    different = a[k].index != b[k].index || a[k].value != b[k].value;
  EXPECT_TRUE(different);
}

TEST(Zoo, FeatureScaleMatchesSigmaSq) {
  // make_train/make_test rescale features so the mean pairwise squared
  // distance ~ sigma^2 (and both use the SAME train-derived factor).
  using svmdata::CsrMatrix;
  for (const char* name : {"higgs", "forest", "url", "mnist"}) {
    const auto& entry = svmdata::zoo_entry(name);
    const Dataset train = svmdata::make_train(entry, 0.3);
    const auto norms = train.X.row_squared_norms();
    svmutil::Rng rng(7);
    double sum = 0.0;
    constexpr int kPairs = 200;
    for (int k = 0; k < kPairs; ++k) {
      const std::size_t i = rng.uniform_index(train.size());
      std::size_t j = rng.uniform_index(train.size() - 1);
      if (j >= i) ++j;
      sum += CsrMatrix::squared_distance(train.X.row(i), train.X.row(j), norms[i], norms[j]);
    }
    const double mean_dist_sq = sum / kPairs;
    EXPECT_GT(mean_dist_sq, 0.4 * entry.sigma_sq) << name;
    EXPECT_LT(mean_dist_sq, 2.5 * entry.sigma_sq) << name;
  }
}

TEST(Scalers, MaxAbsMapsToUnitBall) {
  const Dataset d = dense_tabular({.n = 60, .d = 6, .overlap = 0.1, .seed = 8});
  const auto scaler = MaxAbsScaler::fit(d);
  const Dataset scaled = scaler.transform(d);
  for (std::size_t i = 0; i < scaled.size(); ++i)
    for (const Feature& f : scaled.X.row(i)) EXPECT_LE(std::abs(f.value), 1.0 + 1e-12);
  // Sparsity is preserved.
  EXPECT_EQ(scaled.X.nonzeros(), d.X.nonzeros());
}

TEST(Scalers, MaxAbsAppliesTrainStatisticsToTest) {
  Dataset train;
  train.X.add_row(std::vector<Feature>{{0, 4.0}});
  train.X.add_row(std::vector<Feature>{{0, -2.0}});
  train.y = {1.0, -1.0};
  Dataset test;
  test.X.add_row(std::vector<Feature>{{0, 8.0}});
  test.y = {1.0};
  const auto scaler = MaxAbsScaler::fit(train);
  const Dataset scaled = scaler.transform(test);
  EXPECT_DOUBLE_EQ(scaled.X.row(0)[0].value, 2.0);  // 8 / max|train| = 8/4
}

TEST(Scalers, StandardScalerCentersAndScales) {
  const Dataset d = dense_tabular({.n = 500, .d = 5, .overlap = 0.1, .seed = 9});
  const auto scaler = StandardScaler::fit(d);
  const Dataset scaled = scaler.transform(d);
  // Column means of the transformed data should be ~0, variances ~1.
  std::vector<double> mean(5, 0.0);
  std::vector<double> sq(5, 0.0);
  for (std::size_t i = 0; i < scaled.size(); ++i)
    for (const Feature& f : scaled.X.row(i)) {
      mean[f.index] += f.value;
      sq[f.index] += f.value * f.value;
    }
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(mean[j] / 500.0, 0.0, 1e-9);
    EXPECT_NEAR(sq[j] / 500.0, 1.0, 1e-6);
  }
}

}  // namespace
