#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpisim/spmd.hpp"

namespace {

using svmmpi::Comm;
using svmmpi::kAnySource;
using svmmpi::kAnyTag;
using svmmpi::run_spmd;

TEST(Pt2Pt, SimpleSendRecv) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2, 3};
      comm.send<int>(data, 1);
    } else {
      const auto received = comm.recv<int>(0);
      EXPECT_EQ(received, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(Pt2Pt, SendValueRoundTrip) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0)
      comm.send_value(3.25, 1, 7);
    else
      EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 7), 3.25);
  });
}

TEST(Pt2Pt, EmptyPayload) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0)
      comm.send<int>({}, 1);
    else
      EXPECT_TRUE(comm.recv<int>(0).empty());
  });
}

TEST(Pt2Pt, TagsMatchSelectively) {
  // Rank 1 receives tag 5 first even though tag 3 arrived earlier.
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(30, 1, 3);
      comm.send_value(50, 1, 5);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 5), 50);
      EXPECT_EQ(comm.recv_value<int>(0, 3), 30);
    }
  });
}

TEST(Pt2Pt, FifoPerSourceAndTag) {
  run_spmd(2, [](Comm& comm) {
    constexpr int kCount = 200;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) comm.send_value(i, 1, 9);
    } else {
      for (int i = 0; i < kCount; ++i) EXPECT_EQ(comm.recv_value<int>(0, 9), i);
    }
  });
}

TEST(Pt2Pt, AnySourceReportsSender) {
  run_spmd(3, [](Comm& comm) {
    if (comm.rank() == 2) {
      int seen_mask = 0;
      for (int k = 0; k < 2; ++k) {
        int source = -1;
        const auto v = comm.recv<int>(kAnySource, kAnyTag, &source);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_EQ(v[0], source * 100);
        seen_mask |= 1 << source;
      }
      EXPECT_EQ(seen_mask, 0b11);
    } else {
      comm.send_value(comm.rank() * 100, 2, comm.rank());
    }
  });
}

TEST(Pt2Pt, IsendIrecvWaitall) {
  run_spmd(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    const std::vector<double> mine(64, static_cast<double>(comm.rank()) + 0.5);
    std::vector<double> theirs;
    std::vector<svmmpi::Request> requests;
    requests.push_back(comm.isend<double>(mine, peer, 1));
    requests.push_back(comm.irecv<double>(theirs, peer, 1));
    Comm::wait_all(requests);
    ASSERT_EQ(theirs.size(), 64u);
    EXPECT_DOUBLE_EQ(theirs[0], static_cast<double>(peer) + 0.5);
  });
}

TEST(Pt2Pt, SendrecvRingRotation) {
  constexpr int kRanks = 5;
  run_spmd(kRanks, [](Comm& comm) {
    const int to = (comm.rank() + 1) % kRanks;
    const int from = (comm.rank() - 1 + kRanks) % kRanks;
    std::vector<int> token{comm.rank()};
    for (int step = 0; step < kRanks; ++step)
      token = comm.sendrecv<int>(token, to, from);
    // After p rotations the token returns home.
    EXPECT_EQ(token[0], comm.rank());
  });
}

TEST(Pt2Pt, OutOfRangeDestinationThrows) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& comm) {
                          if (comm.rank() == 0) comm.send_value(1, 5);
                        }),
               std::out_of_range);
}

TEST(Pt2Pt, ExceptionInOneRankPropagates) {
  EXPECT_THROW(run_spmd(3,
                        [](Comm& comm) {
                          if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
                          // Other ranks block; the abort must wake them.
                          (void)comm.recv<int>(svmmpi::kAnySource);
                        }),
               std::runtime_error);
}

TEST(Pt2Pt, TrafficStatsCountBytes) {
  const auto total = run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::int32_t> payload(25, 7);
      comm.send<std::int32_t>(payload, 1);
    } else {
      (void)comm.recv<std::int32_t>(0);
    }
  });
  EXPECT_EQ(total.sends, 1u);
  EXPECT_EQ(total.recvs, 1u);
  EXPECT_EQ(total.bytes_sent, 100u);
  EXPECT_EQ(total.bytes_received, 100u);
  EXPECT_GT(total.modeled_seconds, 0.0);
}

TEST(Pt2Pt, RequestIdempotentWait) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1);
    } else {
      std::vector<int> out;
      auto r = comm.irecv(out, 0);
      r.wait();
      r.wait();  // second wait is a no-op
      EXPECT_TRUE(r.complete());
      EXPECT_EQ(out, std::vector<int>{1});
    }
  });
}

TEST(Pt2Pt, SingleRankWorldTrivia) {
  run_spmd(1, [](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.send_value(42, 0, 1);  // self-send
    EXPECT_EQ(comm.recv_value<int>(0, 1), 42);
  });
}

}  // namespace
