// Equivalence of the parallel "Original" solver (Algorithm 2) with the
// sequential reference (Algorithm 1). Because the working-set selection uses
// index-tie-broken MINLOC/MAXLOC and the pair update is computed redundantly
// from broadcast state, the parallel solver must match the sequential one
// BITWISE for any rank count.
#include <gtest/gtest.h>

#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmdata::Dataset;
using svmkernel::KernelParams;

Dataset medium_dataset() {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 160, .d = 6, .separation = 1.8, .label_noise = 0.05, .seed = 41});
}

SolverParams rbf_params() {
  SolverParams p;
  p.C = 4.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  return p;
}

class DistributedP : public ::testing::TestWithParam<int> {};

TEST_P(DistributedP, OriginalMatchesSequentialBitwise) {
  const Dataset d = medium_dataset();
  const SolverParams params = rbf_params();
  const auto sequential = svmcore::solve_sequential(d, params);

  TrainOptions options;
  options.num_ranks = GetParam();
  const TrainResult parallel = svmcore::train(d, params, options);

  EXPECT_EQ(parallel.iterations, sequential.stats.iterations);
  // beta averages gamma over I0; rank-partial sums regroup the additions,
  // so beta agrees to the last few ulps rather than bitwise.
  EXPECT_NEAR(parallel.beta, sequential.beta, 1e-12);

  // Reassemble the distributed alphas and compare bitwise.
  std::vector<double> alpha(d.size(), 0.0);
  std::size_t offset = 0;
  for (int r = 0; r < options.num_ranks; ++r) {
    const auto range = svmdata::block_range(d.size(), options.num_ranks, r);
    offset = range.begin;
    (void)offset;
  }
  // train() already stitched them into the model; compare support vectors.
  const auto model_seq =
      svmcore::build_model(d, sequential.alpha, sequential.beta, params.kernel);
  EXPECT_EQ(parallel.model.num_support_vectors(), model_seq.num_support_vectors());
  for (std::size_t j = 0; j < model_seq.num_support_vectors(); ++j)
    EXPECT_EQ(parallel.model.coefficients()[j], model_seq.coefficients()[j]);
}

TEST_P(DistributedP, ConvergedAndBoundsConsistent) {
  const Dataset d = medium_dataset();
  TrainOptions options;
  options.num_ranks = GetParam();
  const TrainResult r = svmcore::train(d, rbf_params(), options);
  EXPECT_TRUE(r.converged);
  for (const auto& s : r.rank_stats) {
    EXPECT_EQ(s.iterations, r.iterations);  // global loop count is shared
    EXPECT_LE(s.final_beta_up + 2e-3 * 2, s.final_beta_low + 4e-3 + 1e-9);
  }
}

TEST_P(DistributedP, WorkSplitsAcrossRanks) {
  const Dataset d = medium_dataset();
  TrainOptions options;
  options.num_ranks = GetParam();
  const TrainResult r = svmcore::train(d, rbf_params(), options);
  // Each rank evaluates kernels only for its block: the per-rank max should
  // be well below the single-rank total for p > 1.
  if (GetParam() > 1) {
    EXPECT_LT(r.max_rank_kernel_evaluations, r.total_kernel_evaluations);
    // And communication must have happened.
    EXPECT_GT(r.traffic.collectives, 0u);
    EXPECT_GT(r.traffic.bytes_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, DistributedP, ::testing::Values(1, 2, 3, 4, 8));

TEST(Distributed, RejectsMoreRanksThanSamples) {
  Dataset d;
  d.X.add_row(std::vector<svmdata::Feature>{{0, 1.0}});
  d.X.add_row(std::vector<svmdata::Feature>{{0, -1.0}});
  d.y = {1.0, -1.0};
  TrainOptions options;
  options.num_ranks = 5;
  EXPECT_THROW((void)svmcore::train(d, rbf_params(), options), std::invalid_argument);
}

TEST(Distributed, RejectsSingleClassDataset) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    d.X.add_row(std::vector<svmdata::Feature>{{0, static_cast<double>(i)}});
    d.y.push_back(1.0);
  }
  TrainOptions options;
  options.num_ranks = 2;
  EXPECT_THROW((void)svmcore::train(d, rbf_params(), options), std::invalid_argument);
}

TEST(Distributed, ModeledTimeDecreasesWithRanksOnFixedProblem) {
  // The modeled per-rank compute shrinks ~1/p while modeled network time
  // grows only logarithmically: modeled time must improve from p=1 to p=8
  // on a compute-heavy problem.
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 400, .d = 10, .separation = 1.5, .label_noise = 0.05, .seed = 43});
  const SolverParams params = rbf_params();
  TrainOptions one;
  one.num_ranks = 1;
  TrainOptions eight;
  eight.num_ranks = 8;
  const double t1 = svmcore::train(d, params, one).modeled_seconds;
  const double t8 = svmcore::train(d, params, eight).modeled_seconds;
  EXPECT_LT(t8, t1);
}

TEST(Distributed, OpenmpGammaPathIsBitwiseEquivalent) {
  // The hybrid OpenMP gamma update touches disjoint entries with identical
  // arithmetic, so it must reproduce the serial path exactly.
  const Dataset d = medium_dataset();
  const SolverParams params = rbf_params();
  TrainOptions serial;
  serial.num_ranks = 2;
  serial.heuristic = svmcore::Heuristic::parse("Multi5pc");
  TrainOptions hybrid = serial;
  hybrid.openmp_gamma = true;
  const TrainResult a = svmcore::train(d, params, serial);
  const TrainResult b = svmcore::train(d, params, hybrid);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.samples_shrunk, b.samples_shrunk);
  EXPECT_EQ(a.beta, b.beta);
  ASSERT_EQ(a.model.num_support_vectors(), b.model.num_support_vectors());
  for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
    EXPECT_EQ(a.model.coefficients()[j], b.model.coefficients()[j]);
}

TEST(Distributed, ActiveTraceRecordsShrinkingCurve) {
  const Dataset d = medium_dataset();
  TrainOptions options;
  options.num_ranks = 2;
  options.heuristic = svmcore::Heuristic::parse("Multi5pc");
  options.trace_active_interval = 50;
  const TrainResult r = svmcore::train(d, rbf_params(), options);
  ASSERT_FALSE(r.active_trace.empty());
  // Iterations in the trace are multiples of the interval, ascending, and
  // active counts never exceed the dataset size.
  std::uint64_t previous = 0;
  for (const auto& [iteration, active] : r.active_trace) {
    EXPECT_EQ(iteration % 50, 0u);
    EXPECT_GT(iteration, previous);
    previous = iteration;
    EXPECT_LE(active, d.size());
    EXPECT_GT(active, 0u);
  }
  // With shrinking, some sample point must show a reduced active set.
  bool shrunk_seen = false;
  for (const auto& [iteration, active] : r.active_trace)
    if (active < d.size()) shrunk_seen = true;
  EXPECT_TRUE(shrunk_seen);
}

TEST(Distributed, TraceDisabledByDefault) {
  const Dataset d = medium_dataset();
  TrainOptions options;
  options.num_ranks = 2;
  const TrainResult r = svmcore::train(d, rbf_params(), options);
  EXPECT_TRUE(r.active_trace.empty());
}

TEST(Distributed, OneSamplePerRankEdgeCase) {
  // p == n: every rank owns exactly one sample; the full communication
  // machinery (owner->0->bcast, ring) runs with minimal blocks.
  svmdata::Dataset d;
  for (int i = 0; i < 12; ++i) {
    d.X.add_row(std::vector<svmdata::Feature>{{0, static_cast<double>(i % 2 ? 1 : -1)},
                                              {1, static_cast<double>(i) / 12.0}});
    d.y.push_back(i % 2 ? 1.0 : -1.0);
  }
  TrainOptions options;
  options.num_ranks = 12;
  const TrainResult r = svmcore::train(d, rbf_params(), options);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.model.accuracy(d), 0.9);

  // And with shrinking on the same extreme layout.
  options.heuristic = svmcore::Heuristic::parse("Multi2");
  const TrainResult s = svmcore::train(d, rbf_params(), options);
  EXPECT_TRUE(s.converged);
  EXPECT_NEAR(s.beta, r.beta, 1e-9);
}

TEST(Distributed, OpenmpGammaMatchesOnOriginalToo) {
  const Dataset d = medium_dataset();
  const SolverParams params = rbf_params();
  TrainOptions serial;
  serial.num_ranks = 3;
  TrainOptions hybrid = serial;
  hybrid.openmp_gamma = true;
  const TrainResult a = svmcore::train(d, params, serial);
  const TrainResult b = svmcore::train(d, params, hybrid);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.beta, b.beta);
}

TEST(Distributed, TrafficScalesWithIterations) {
  const Dataset d = medium_dataset();
  TrainOptions options;
  options.num_ranks = 4;
  const TrainResult r = svmcore::train(d, rbf_params(), options);
  // Per iteration: >= 2 pt2pt bcast payloads + 2 MINLOC/MAXLOC collectives.
  EXPECT_GE(r.traffic.collectives, 2 * r.iterations);
}

}  // namespace
