// Stress and interleaving tests for the message-passing runtime: many ranks,
// mixed pt2pt + collective traffic, repeated rounds — the access patterns the
// SVM solvers generate at much higher volume.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "mpisim/spmd.hpp"

namespace {

using svmmpi::Comm;
using svmmpi::ReduceOp;
using svmmpi::run_spmd;

TEST(Stress, ManyRanksBarrierStorm) {
  run_spmd(32, [](Comm& comm) {
    for (int i = 0; i < 50; ++i) comm.barrier();
  });
}

TEST(Stress, AllToAllViaPt2Pt) {
  constexpr int kRanks = 8;
  run_spmd(kRanks, [](Comm& comm) {
    // Everyone sends to everyone (including self), then receives all.
    for (int dst = 0; dst < kRanks; ++dst)
      comm.send_value(comm.rank() * 1000 + dst, dst, /*tag=*/dst);
    std::int64_t sum = 0;
    for (int src = 0; src < kRanks; ++src)
      sum += comm.recv_value<int>(src, /*tag=*/comm.rank());
    // Each sender src sent src*1000 + my_rank.
    std::int64_t expected = 0;
    for (int src = 0; src < kRanks; ++src) expected += src * 1000 + comm.rank();
    EXPECT_EQ(sum, expected);
  });
}

TEST(Stress, InterleavedCollectivesAndPt2Pt) {
  constexpr int kRanks = 6;
  run_spmd(kRanks, [](Comm& comm) {
    for (int round = 0; round < 30; ++round) {
      const int to = (comm.rank() + 1) % kRanks;
      const int from = (comm.rank() - 1 + kRanks) % kRanks;
      const std::vector<int> token{comm.rank(), round};
      const auto got = comm.sendrecv<int>(token, to, from);
      EXPECT_EQ(got[0], from);
      EXPECT_EQ(got[1], round);
      const auto check = comm.allreduce(static_cast<std::int64_t>(round), ReduceOp::min);
      EXPECT_EQ(check, round);
    }
  });
}

TEST(Stress, LargePayloadRing) {
  constexpr int kRanks = 4;
  constexpr std::size_t kDoubles = 1 << 16;  // 512 KiB per message
  run_spmd(kRanks, [](Comm& comm) {
    std::vector<double> block(kDoubles, static_cast<double>(comm.rank()));
    const int to = (comm.rank() + 1) % kRanks;
    const int from = (comm.rank() - 1 + kRanks) % kRanks;
    for (int step = 0; step < kRanks; ++step) block = comm.sendrecv<double>(block, to, from);
    // Back to the original block after p rotations.
    for (std::size_t i = 0; i < 16; ++i)
      EXPECT_DOUBLE_EQ(block[i], static_cast<double>(comm.rank()));
  });
}

TEST(Stress, ReductionDeterminismAcrossRuns) {
  // Rank-ordered combining must give bitwise-identical results on every run,
  // regardless of thread scheduling.
  constexpr int kRanks = 7;
  double first = 0.0;
  for (int run = 0; run < 5; ++run) {
    std::vector<double> result(kRanks);
    run_spmd(kRanks, [&](Comm& comm) {
      // Values chosen so that summation order changes the rounding.
      const double mine = 1.0 / (3.0 + comm.rank()) * (comm.rank() % 2 ? 1e-13 : 1.0);
      result[comm.rank()] = comm.allreduce(mine, ReduceOp::sum);
    });
    for (int r = 1; r < kRanks; ++r) EXPECT_EQ(result[0], result[r]);
    if (run == 0)
      first = result[0];
    else
      EXPECT_EQ(result[0], first);  // bitwise equality across runs
  }
}

TEST(Stress, ManySmallMessagesBackToBack) {
  run_spmd(2, [](Comm& comm) {
    constexpr int kCount = 5000;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) comm.send_value(i, 1);
      std::int64_t sum = 0;
      for (int i = 0; i < kCount; ++i) sum += comm.recv_value<int>(1);
      EXPECT_EQ(sum, static_cast<std::int64_t>(kCount) * (kCount - 1) / 2);
    } else {
      std::int64_t sum = 0;
      for (int i = 0; i < kCount; ++i) {
        const int v = comm.recv_value<int>(0);
        sum += v;
        comm.send_value(v, 0);
      }
      EXPECT_EQ(sum, static_cast<std::int64_t>(kCount) * (kCount - 1) / 2);
    }
  });
}

TEST(Stress, AbortDuringCollectiveUnblocksEveryone) {
  // One rank dies while the others are parked inside a collective; the
  // abort must wake them (no deadlock) and surface the original error.
  EXPECT_THROW(run_spmd(4,
                        [](Comm& comm) {
                          if (comm.rank() == 2) throw std::logic_error("rank 2 died");
                          (void)comm.allreduce(1.0, ReduceOp::sum);
                          // Extra round in case the abort lands late.
                          (void)comm.allreduce(2.0, ReduceOp::sum);
                        }),
               std::logic_error);
}

TEST(Stress, AbortDuringRingUnblocksEveryone) {
  EXPECT_THROW(run_spmd(4,
                        [](Comm& comm) {
                          if (comm.rank() == 0) throw std::runtime_error("boom");
                          const std::vector<int> token{comm.rank()};
                          const int to = (comm.rank() + 1) % 4;
                          const int from = (comm.rank() + 3) % 4;
                          for (int step = 0; step < 4; ++step)
                            (void)comm.sendrecv<int>(token, to, from);
                        }),
               std::runtime_error);
}

TEST(Stress, PerRankStatsAreConsistent) {
  std::vector<svmmpi::TrafficStats> per_rank;
  run_spmd(
      4,
      [](Comm& comm) {
        if (comm.rank() == 0)
          for (int dst = 1; dst < 4; ++dst) comm.send<double>(std::vector<double>(10, 1.0), dst);
        else
          (void)comm.recv<double>(0);
      },
      svmmpi::NetModel{},
      [&](const svmmpi::World& world) {
        for (int r = 0; r < 4; ++r) per_rank.push_back(world.stats(r));
      });
  EXPECT_EQ(per_rank[0].sends, 3u);
  EXPECT_EQ(per_rank[0].bytes_sent, 240u);
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(per_rank[r].recvs, 1u);
    EXPECT_EQ(per_rank[r].bytes_received, 80u);
  }
}

}  // namespace
