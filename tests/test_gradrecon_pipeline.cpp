// Pipelined gradient-reconstruction parity. The double-buffered ring
// (DistributedConfig::pipelined_reconstruction, the default) must produce a
// BIT-IDENTICAL model to the serial reference ring — same iteration count,
// same beta, same support vectors, same coefficients — at every world size,
// across engine backends, and through crash/shrink chaos schedules. The
// pipeline is a performance knob, never a results knob; on top of parity the
// overlap accounting must show the exchanges actually riding behind the
// compute (overlapped steps, overlapped modeled seconds).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/distributed_solver.hpp"
#include "core/trainer.hpp"
#include "data/zoo.hpp"
#include "kernel/kernel.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"

namespace {

using svmcore::DistributedConfig;
using svmcore::DistributedSolver;
using svmcore::Heuristic;
using svmcore::RecoveryOptions;
using svmcore::RecoveryPolicy;
using svmcore::RecoveryReport;
using svmcore::SolverParams;
using svmcore::TrainOptions;
using svmcore::TrainResult;
using svmdata::Dataset;
using svmdata::ZooEntry;
using svmkernel::EngineBackend;
using svmmpi::FaultInjector;
using svmmpi::FaultPlan;

// Workload where shrinking (and therefore Algorithm 3 reconstruction) always
// fires: every test below asserts reconstructions > 0 so a parity pass can
// never be vacuous.
constexpr const char* kDataset = "codrna";
constexpr const char* kHeuristic = "Multi5pc";
constexpr double kScale = 0.15;

SolverParams params_for(const ZooEntry& entry,
                        EngineBackend backend = EngineBackend::dense_scatter) {
  SolverParams p;
  p.C = entry.C;
  p.eps = 1e-3;
  p.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  p.engine_backend = backend;
  return p;
}

TrainOptions options_for(int ranks, bool pipelined) {
  TrainOptions options;
  options.num_ranks = ranks;
  options.heuristic = Heuristic::parse(kHeuristic);
  options.pipelined_reconstruction = pipelined;
  return options;
}

void expect_bit_identical(const TrainResult& a, const TrainResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.model.num_support_vectors(), b.model.num_support_vectors());
  for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
    EXPECT_EQ(a.model.coefficients()[j], b.model.coefficients()[j]) << "sv " << j;
}

/// Total communication ops rank `rank` issues during a fault-free solve:
/// lets the chaos tests schedule failures at precise fractions of the run.
std::uint64_t probe_ops(const Dataset& d, const SolverParams& params,
                        const TrainOptions& options, int rank) {
  FaultInjector probe{FaultPlan{}};
  const DistributedConfig config{params, options.heuristic, options.permanent_shrink,
                                 options.openmp_gamma, options.trace_active_interval,
                                 options.pipelined_reconstruction};
  svmmpi::run_spmd(
      options.num_ranks,
      [&](svmmpi::Comm& comm) {
        DistributedSolver solver(comm, d, config);
        (void)solver.solve();
      },
      options.net_model, nullptr, &probe);
  return probe.ops(rank);
}

class PipelineParityP : public ::testing::TestWithParam<int> {};

TEST_P(PipelineParityP, ModelBitIdenticalToSerialRing) {
  const int p = GetParam();
  const ZooEntry& entry = svmdata::zoo_entry(kDataset);
  const Dataset train = svmdata::make_train(entry, kScale);
  const SolverParams params = params_for(entry);

  const TrainResult serial = svmcore::train(train, params, options_for(p, false));
  const TrainResult pipelined = svmcore::train(train, params, options_for(p, true));

  ASSERT_TRUE(serial.converged);
  ASSERT_GT(pipelined.reconstructions, 0u) << "workload must exercise Algorithm 3";
  expect_bit_identical(pipelined, serial);
  // Identical final models AND identical iteration counts mean every
  // intermediate gamma was identical too: WSS picks the extreme-gamma pair,
  // so the first diverging gradient would change the trajectory.
  EXPECT_EQ(pipelined.total_kernel_evaluations, serial.total_kernel_evaluations);
  EXPECT_EQ(pipelined.reconstructions, serial.reconstructions);

  // Overlap accounting: every reconstruction runs p ring steps of which the
  // p-1 exchanging ones are overlapped; the serial ring overlaps nothing.
  EXPECT_EQ(pipelined.recon_ring_steps, pipelined.reconstructions * static_cast<unsigned>(p));
  EXPECT_EQ(pipelined.recon_overlapped_steps,
            pipelined.reconstructions * static_cast<unsigned>(p - 1));
  EXPECT_EQ(serial.recon_overlapped_steps, 0u);
  EXPECT_EQ(serial.recon_overlapped_seconds, 0.0);
  EXPECT_GT(pipelined.recon_comm_seconds, 0.0);
  EXPECT_GT(pipelined.recon_overlapped_seconds, 0.0);
  EXPECT_LE(pipelined.recon_overlapped_seconds, pipelined.recon_comm_seconds);
}

INSTANTIATE_TEST_SUITE_P(Worlds, PipelineParityP, ::testing::Values(2, 4, 8),
                         [](const auto& param_info) {
                           return "p" + std::to_string(param_info.param);
                         });

TEST(GradReconPipeline, PipelinedDenseScatterMatchesSerialReference) {
  // Cross parity over BOTH axes at once: the pipelined ring on the fused
  // dense_scatter backend against the serial ring on the reference backend.
  const ZooEntry& entry = svmdata::zoo_entry(kDataset);
  const Dataset train = svmdata::make_train(entry, kScale);

  const TrainResult serial_ref =
      svmcore::train(train, params_for(entry, EngineBackend::reference), options_for(4, false));
  const TrainResult pipelined_fused = svmcore::train(
      train, params_for(entry, EngineBackend::dense_scatter), options_for(4, true));

  ASSERT_TRUE(serial_ref.converged);
  ASSERT_GT(pipelined_fused.reconstructions, 0u);
  expect_bit_identical(pipelined_fused, serial_ref);
  EXPECT_EQ(pipelined_fused.total_kernel_evaluations, serial_ref.total_kernel_evaluations);
}

TEST(GradReconPipeline, MinActiveCoversFinalPhaseExit) {
  // stats_.min_active must be sampled at phase exits too, not only at shrink
  // passes: the summed minimum stays a true lower bound on the global active
  // set and never exceeds the dataset size.
  const ZooEntry& entry = svmdata::zoo_entry(kDataset);
  const Dataset train = svmdata::make_train(entry, kScale);
  const TrainResult result = svmcore::train(train, params_for(entry), options_for(4, true));
  ASSERT_TRUE(result.converged);
  ASSERT_GT(result.samples_shrunk, 0u);

  std::size_t summed_min = 0;
  for (const auto& s : result.rank_stats) {
    EXPECT_GT(s.min_active, 0u);
    summed_min += s.min_active;
  }
  EXPECT_LT(summed_min, train.size()) << "shrinking ran, so some rank dipped below its range";
  EXPECT_GT(summed_min, 0u);
}

TEST(GradReconPipeline, CrashMidPipelineRecoversBitIdentical) {
  // A rank crash while the ring is in flight (Isend/Irecv posted, compute
  // running) must unwind cleanly and replay from the last checkpoint cut to
  // the exact fault-free model. Three crash points sweep the schedule so at
  // least one lands inside a reconstruction's pipelined steps.
  const ZooEntry& entry = svmdata::zoo_entry(kDataset);
  const Dataset train = svmdata::make_train(entry, kScale);
  const SolverParams params = params_for(entry);
  const TrainOptions options = options_for(4, true);

  const TrainResult baseline = svmcore::train(train, params, options);
  ASSERT_TRUE(baseline.converged);
  ASSERT_GT(baseline.reconstructions, 0u);

  const std::uint64_t total_ops = probe_ops(train, params, options, /*rank=*/1);
  ASSERT_GT(total_ops, 100u);

  for (const std::uint64_t at : {total_ops / 3, total_ops / 2, (2 * total_ops) / 3}) {
    RecoveryOptions recovery;
    recovery.fault_plan = FaultPlan{}.crash(1, at);
    recovery.checkpoint_interval = 32;
    RecoveryReport report;
    const TrainResult recovered =
        svmcore::train_with_recovery(train, params, options, recovery, &report);
    EXPECT_EQ(report.restarts, 1) << "crash op " << at;
    EXPECT_TRUE(recovered.converged) << "crash op " << at;
    expect_bit_identical(recovered, baseline);
  }
}

TEST(GradReconPipeline, ShrinkWorldMidPipelineMatchesFaultFree) {
  // Permanent loss (FaultPlan::die) with in-world shrink recovery: the
  // survivors resume the identical SMO trajectory on p-1 ranks and the
  // pipelined reconstruction keeps running on the compacted ring. Same
  // support-vector set; coefficients differ only by the re-grouped ring and
  // assembly summations.
  const ZooEntry& entry = svmdata::zoo_entry(kDataset);
  const Dataset train = svmdata::make_train(entry, kScale);
  const SolverParams params = params_for(entry);
  TrainOptions options = options_for(4, true);
  options.net_model.timeout_s = 5.0;  // shrink recovery needs a deadline

  const TrainResult baseline = svmcore::train(train, params, options);
  ASSERT_TRUE(baseline.converged);
  ASSERT_GT(baseline.reconstructions, 0u);

  const std::uint64_t total_ops = probe_ops(train, params, options, /*rank=*/1);
  ASSERT_GT(total_ops, 100u);

  RecoveryOptions recovery;
  recovery.fault_plan = FaultPlan{}.die(1, total_ops / 2);
  recovery.policy = RecoveryPolicy::shrink_world;
  recovery.checkpoint_interval = 32;
  RecoveryReport report;
  const TrainResult shrunk =
      svmcore::train_with_recovery(train, params, options, recovery, &report);

  EXPECT_EQ(report.shrinks, 1);
  EXPECT_EQ(report.restarts, 0) << "shrink_world must never relaunch the world";
  EXPECT_TRUE(shrunk.converged);
  EXPECT_EQ(shrunk.iterations, baseline.iterations);
  ASSERT_EQ(shrunk.model.num_support_vectors(), baseline.model.num_support_vectors());
  for (std::size_t j = 0; j < baseline.model.num_support_vectors(); ++j)
    EXPECT_NEAR(shrunk.model.coefficients()[j], baseline.model.coefficients()[j], 1e-10)
        << "sv " << j;
}

}  // namespace
