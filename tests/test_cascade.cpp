#include <gtest/gtest.h>

#include "cascade/cascade_svm.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcascade::CascadeOptions;
using svmcascade::CascadeResult;
using svmcascade::train_cascade;
using svmdata::Dataset;
using svmkernel::KernelParams;

Dataset training_data() {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 400, .d = 6, .separation = 2.2, .label_noise = 0.03, .seed = 111});
}

CascadeOptions options_with(int levels) {
  CascadeOptions o;
  o.levels = levels;
  o.params.C = 8.0;
  o.params.eps = 1e-3;
  o.params.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  return o;
}

TEST(Cascade, MatchesDirectSolveAccuracy) {
  const Dataset train = training_data();
  const Dataset test = svmdata::synthetic::gaussian_blobs(
      {.n = 400, .d = 6, .separation = 2.2, .seed = 111, .draw = 1});

  const CascadeResult cascade = train_cascade(train, options_with(2));
  ASSERT_TRUE(cascade.converged);

  svmcore::SolverParams params = options_with(2).params;
  const auto direct = svmcore::train(train, params, {});

  EXPECT_NEAR(cascade.model.accuracy(test), direct.model.accuracy(test), 0.03);
}

TEST(Cascade, ZeroLevelsIsDirectSolve) {
  const Dataset train = training_data();
  const CascadeResult r = train_cascade(train, options_with(0));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.leaf_seconds.size(), 1u);
  EXPECT_GT(r.model.accuracy(train), 0.9);
}

TEST(Cascade, RecordsPerLeafStatistics) {
  const CascadeResult r = train_cascade(training_data(), options_with(3));
  EXPECT_EQ(r.leaf_seconds.size(), 8u);
  EXPECT_EQ(r.leaf_support_vectors.size(), 8u);
  for (const std::size_t svs : r.leaf_support_vectors) EXPECT_GT(svs, 0u);
  EXPECT_GE(r.imbalance(), 1.0);
}

TEST(Cascade, FeedbackConvergesWithinPassLimit) {
  CascadeOptions options = options_with(2);
  options.max_passes = 5;
  const CascadeResult r = train_cascade(training_data(), options);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.passes, 2u);  // at least one feedback round to confirm stability
  EXPECT_LE(r.passes, 5u);
}

TEST(Cascade, SupportVectorsAreSubsetOfData) {
  const Dataset train = training_data();
  const CascadeResult r = train_cascade(train, options_with(2));
  EXPECT_GT(r.model.num_support_vectors(), 0u);
  EXPECT_LT(r.model.num_support_vectors(), train.size());
}

TEST(Cascade, RejectsDegenerateInput) {
  const Dataset train = training_data();
  EXPECT_THROW((void)train_cascade(train, options_with(-1)), std::invalid_argument);
  CascadeOptions too_many = options_with(12);
  EXPECT_THROW((void)train_cascade(train, too_many), std::invalid_argument);

  Dataset one_class;
  for (int i = 0; i < 16; ++i) {
    one_class.X.add_row(std::vector<svmdata::Feature>{{0, static_cast<double>(i)}});
    one_class.y.push_back(1.0);
  }
  EXPECT_THROW((void)train_cascade(one_class, options_with(1)), std::invalid_argument);
}

TEST(Cascade, EveryLeafSeesBothClasses) {
  // 90/10 imbalance with 8 leaves: class-striped partitioning must still put
  // positives in every leaf (otherwise leaf solves would throw).
  const Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = 320, .d = 4, .separation = 2.5, .positive_fraction = 0.1, .seed = 113});
  EXPECT_NO_THROW((void)train_cascade(train, options_with(3)));
}

}  // namespace
