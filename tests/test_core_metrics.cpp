#include <gtest/gtest.h>

#include "core/distributed_predict.hpp"
#include "core/metrics.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "mpisim/spmd.hpp"

namespace {

using svmcore::ConfusionMatrix;
using svmcore::confusion;

TEST(Confusion, CountsAllFourQuadrants) {
  const std::vector<double> predicted{1, 1, -1, -1, 1, -1};
  const std::vector<double> actual{1, -1, -1, 1, 1, -1};
  const ConfusionMatrix m = confusion(predicted, actual);
  EXPECT_EQ(m.true_positive, 2u);
  EXPECT_EQ(m.false_positive, 1u);
  EXPECT_EQ(m.false_negative, 1u);
  EXPECT_EQ(m.true_negative, 2u);
  EXPECT_EQ(m.total(), 6u);
}

TEST(Confusion, LengthMismatchThrows) {
  EXPECT_THROW((void)confusion(std::vector<double>{1.0}, std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Confusion, MetricsMatchHandComputation) {
  ConfusionMatrix m;
  m.true_positive = 8;
  m.false_positive = 2;
  m.false_negative = 4;
  m.true_negative = 6;
  EXPECT_DOUBLE_EQ(m.accuracy(), 14.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.precision(), 8.0 / 10.0);
  EXPECT_DOUBLE_EQ(m.recall(), 8.0 / 12.0);
  const double p = 0.8;
  const double r = 8.0 / 12.0;
  EXPECT_DOUBLE_EQ(m.f1(), 2 * p * r / (p + r));
  EXPECT_GT(m.matthews(), 0.0);
  EXPECT_LT(m.matthews(), 1.0);
}

TEST(Confusion, PerfectClassifierEdges) {
  ConfusionMatrix m;
  m.true_positive = 5;
  m.true_negative = 5;
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.f1(), 1.0);
  EXPECT_DOUBLE_EQ(m.matthews(), 1.0);
}

TEST(Confusion, DegenerateAllNegativePredictions) {
  ConfusionMatrix m;
  m.true_negative = 6;
  m.false_negative = 4;
  EXPECT_DOUBLE_EQ(m.precision(), 0.0);  // no positive predictions
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(), 0.0);
  EXPECT_DOUBLE_EQ(m.matthews(), 0.0);
}

TEST(Confusion, EmptyMatrixIsZero) {
  const ConfusionMatrix m;
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_EQ(m.total(), 0u);
}

TEST(Confusion, ReportContainsAllFields) {
  ConfusionMatrix m;
  m.true_positive = 3;
  m.true_negative = 3;
  m.false_positive = 2;
  m.false_negative = 2;
  const std::string report = svmcore::classification_report(m);
  for (const char* field : {"accuracy", "precision", "recall", "f1", "mcc", "TP=3"})
    EXPECT_NE(report.find(field), std::string::npos) << field;
}

class DistributedPredictP : public ::testing::TestWithParam<int> {};

TEST_P(DistributedPredictP, MatchesSerialEvaluation) {
  const auto train = svmdata::synthetic::gaussian_blobs(
      {.n = 150, .d = 5, .separation = 2.0, .label_noise = 0.05, .seed = 81});
  const auto test = svmdata::synthetic::gaussian_blobs(
      {.n = 90, .d = 5, .separation = 2.0, .seed = 81, .draw = 1});
  svmcore::SolverParams params;
  params.C = 4.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(4.0);
  const auto result = svmcore::train(train, params, {});
  const auto& model = result.model;

  // Serial reference.
  const auto serial = svmcore::confusion(model.predict_all(test.X, false), test.y);

  // Distributed evaluation on GetParam() ranks.
  std::vector<ConfusionMatrix> per_rank(GetParam());
  svmmpi::run_spmd(GetParam(), [&](svmmpi::Comm& comm) {
    per_rank[comm.rank()] = svmcore::distributed_evaluate(comm, model, test);
  });
  for (const ConfusionMatrix& m : per_rank) {
    EXPECT_EQ(m.true_positive, serial.true_positive);
    EXPECT_EQ(m.true_negative, serial.true_negative);
    EXPECT_EQ(m.false_positive, serial.false_positive);
    EXPECT_EQ(m.false_negative, serial.false_negative);
  }

  // Accuracy helper agrees too.
  std::vector<double> accuracy(GetParam());
  svmmpi::run_spmd(GetParam(), [&](svmmpi::Comm& comm) {
    accuracy[comm.rank()] = svmcore::distributed_accuracy(comm, model, test);
  });
  for (const double a : accuracy) EXPECT_DOUBLE_EQ(a, serial.accuracy());
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedPredictP, ::testing::Values(1, 2, 3, 5));

}  // namespace
