// Extension features: class-weighted C (cost-sensitive training) and the
// cross-validation grid search behind the paper's Table III hyper-parameter
// selection (§V-C).
#include <gtest/gtest.h>

#include "baseline/libsvm_like.hpp"
#include "core/grid_search.hpp"
#include "core/metrics.hpp"
#include "core/objective.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::SolverParams;
using svmdata::Dataset;
using svmkernel::KernelParams;

Dataset imbalanced_dataset(std::uint64_t draw = 0) {
  // 85% negative, 15% positive, moderate overlap: the setting where class
  // weights matter.
  return svmdata::synthetic::gaussian_blobs({.n = 400,
                                             .d = 6,
                                             .separation = 1.5,
                                             .label_noise = 0.02,
                                             .positive_fraction = 0.15,
                                             .seed = 91,
                                             .draw = draw});
}

SolverParams weighted_params(double w_pos) {
  SolverParams p;
  p.C = 4.0;
  p.eps = 1e-3;
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  p.weight_positive = w_pos;
  return p;
}

TEST(WeightedC, CofRespectsLabels) {
  SolverParams p = weighted_params(5.0);
  p.weight_negative = 0.5;
  EXPECT_DOUBLE_EQ(p.C_of(1.0), 20.0);
  EXPECT_DOUBLE_EQ(p.C_of(-1.0), 2.0);
}

TEST(WeightedC, UnitWeightsMatchUnweightedBitwise) {
  const Dataset d = imbalanced_dataset();
  SolverParams unweighted = weighted_params(1.0);
  SolverParams weighted = weighted_params(1.0);
  weighted.weight_negative = 1.0;
  const auto a = svmcore::solve_sequential(d, unweighted);
  const auto b = svmcore::solve_sequential(d, weighted);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  for (std::size_t i = 0; i < a.alpha.size(); ++i) EXPECT_EQ(a.alpha[i], b.alpha[i]);
}

TEST(WeightedC, AlphasRespectPerClassBounds) {
  const Dataset d = imbalanced_dataset();
  const SolverParams p = weighted_params(6.0);  // C+ = 24, C- = 4
  const auto r = svmcore::solve_sequential(d, p);
  ASSERT_TRUE(r.stats.converged);
  bool positive_exceeds_base_c = false;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double bound = p.C_of(d.y[i]);
    EXPECT_GE(r.alpha[i], 0.0);
    EXPECT_LE(r.alpha[i], bound);
    if (d.y[i] > 0 && r.alpha[i] > p.C) positive_exceeds_base_c = true;
  }
  // The weight must actually be used: some positive alpha exceeds plain C.
  EXPECT_TRUE(positive_exceeds_base_c);
}

TEST(WeightedC, KktHoldsWithWeights) {
  const Dataset d = imbalanced_dataset();
  const SolverParams p = weighted_params(4.0);
  const auto r = svmcore::solve_sequential(d, p);
  const auto report = svmcore::kkt_report(d, r.alpha, p);
  EXPECT_LE(report.gap, 2.0 * p.eps + 1e-9);
  EXPECT_LE(report.max_alpha_bound_violation, 1e-12);
}

TEST(WeightedC, UpweightingPositivesImprovesRecall) {
  const Dataset train = imbalanced_dataset(0);
  const Dataset test = imbalanced_dataset(1);

  auto recall_with = [&](double w_pos) {
    const auto r = svmcore::train(train, weighted_params(w_pos), {});
    return svmcore::confusion(r.model.predict_all(test.X), test.y).recall();
  };
  const double recall_plain = recall_with(1.0);
  const double recall_weighted = recall_with(8.0);
  EXPECT_GT(recall_weighted, recall_plain);
}

TEST(WeightedC, DistributedMatchesSequentialWithWeights) {
  const Dataset d = imbalanced_dataset();
  const SolverParams p = weighted_params(3.0);
  const auto sequential = svmcore::solve_sequential(d, p);
  svmcore::TrainOptions options;
  options.num_ranks = 4;
  const auto parallel = svmcore::train(d, p, options);
  EXPECT_EQ(parallel.iterations, sequential.stats.iterations);
  EXPECT_NEAR(parallel.beta, sequential.beta, 1e-12);
}

TEST(WeightedC, ShrinkingSolverHonoursWeights) {
  const Dataset d = imbalanced_dataset();
  const SolverParams p = weighted_params(4.0);
  svmcore::TrainOptions options;
  options.num_ranks = 2;
  options.heuristic = svmcore::Heuristic::best();
  const auto result = svmcore::train(d, p, options);
  ASSERT_TRUE(result.converged);
  // Coefficients are alpha*y: positives may reach C*w+, negatives only C.
  for (std::size_t j = 0; j < result.model.num_support_vectors(); ++j) {
    const double coef = result.model.coefficients()[j];
    if (coef > 0)
      EXPECT_LE(coef, p.C * p.weight_positive + 1e-9);
    else
      EXPECT_GE(coef, -p.C * p.weight_negative - 1e-9);
  }
}

TEST(WeightedC, BaselineAgreesWithCoreUnderWeights) {
  const Dataset d = imbalanced_dataset();
  const SolverParams p = weighted_params(4.0);
  const auto core = svmcore::solve_sequential(d, p);

  svmbaseline::BaselineOptions options;
  options.C = p.C;
  options.weight_positive = p.weight_positive;
  options.eps = p.eps;
  options.kernel = p.kernel;
  const auto baseline = svmbaseline::solve_libsvm_like(d, options);

  const double obj_core = svmcore::dual_objective(d, core.alpha, p.kernel);
  const double obj_baseline = svmcore::dual_objective(d, baseline.alpha, p.kernel);
  EXPECT_NEAR(obj_core, obj_baseline, 0.02 * std::abs(obj_core) + 0.1);
}

TEST(GridSearch, FindsReasonableCell) {
  const Dataset d = svmdata::synthetic::two_rings(
      {.n = 300, .d = 3, .inner_radius = 1.0, .gap = 1.5, .thickness = 0.2, .seed = 93});
  svmcore::GridSearchOptions options;
  options.c_values = {1.0, 10.0};
  options.gamma_values = {0.01, 1.0};
  options.folds = 3;
  const auto result = svmcore::grid_search(d, options);
  EXPECT_EQ(result.cells.size(), 4u);
  EXPECT_GT(result.best.mean_accuracy, 0.9);
  // Rings need a narrow kernel: gamma=1.0 should beat gamma=0.01.
  EXPECT_DOUBLE_EQ(result.best.gamma, 1.0);
  EXPECT_DOUBLE_EQ(result.best_sigma_sq(), 1.0);
}

TEST(GridSearch, BestIsMaxOverCells) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 200, .d = 4, .separation = 2.0, .seed = 95});
  svmcore::GridSearchOptions options;
  options.c_values = {0.1, 1.0, 10.0};
  options.gamma_values = {0.1, 1.0};
  options.folds = 3;
  const auto result = svmcore::grid_search(d, options);
  for (const auto& cell : result.cells)
    EXPECT_LE(cell.mean_accuracy, result.best.mean_accuracy + 1e-12);
}

TEST(GridSearch, RejectsEmptyGridAndBadFolds) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 50, .d = 3, .separation = 2.0, .seed = 97});
  svmcore::GridSearchOptions empty;
  empty.c_values.clear();
  EXPECT_THROW((void)svmcore::grid_search(d, empty), std::invalid_argument);
  svmcore::GridSearchOptions bad_folds;
  bad_folds.folds = 0;
  EXPECT_THROW((void)svmcore::grid_search(d, bad_folds), std::invalid_argument);
}

TEST(GridSearch, CellCountIsGridProduct) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 60, .d = 3, .separation = 3.0, .seed = 99});
  svmcore::GridSearchOptions options;
  options.c_values = {1.0, 2.0, 4.0};
  options.gamma_values = {0.5, 1.0};
  options.folds = 2;
  EXPECT_EQ(svmcore::grid_search(d, options).cells.size(), 6u);
}

}  // namespace
