#include <gtest/gtest.h>

#include "baseline/libsvm_like.hpp"
#include "baseline/nu_svc.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace {

using svmbaseline::NuSvcOptions;
using svmbaseline::NuSvcResult;
using svmbaseline::solve_nu_svc;
using svmdata::Dataset;
using svmkernel::KernelParams;

Dataset training_data(double noise = 0.05) {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 240, .d = 6, .separation = 2.0, .label_noise = noise, .seed = 101});
}

NuSvcOptions options_with(double nu) {
  NuSvcOptions o;
  o.nu = nu;
  o.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  return o;
}

TEST(NuSvc, TrainsAndClassifies) {
  const Dataset train = training_data();
  const NuSvcResult r = solve_nu_svc(train, options_with(0.2));
  ASSERT_TRUE(r.converged);
  const auto model = r.to_model(train.X, options_with(0.2).kernel);
  EXPECT_GT(model.accuracy(train), 0.9);
}

TEST(NuSvc, NuPropertyBoundsSvAndErrorFractions) {
  const Dataset train = training_data(0.08);
  const double nu = 0.3;
  const NuSvcResult r = solve_nu_svc(train, options_with(nu));
  const auto model = r.to_model(train.X, options_with(nu).kernel);

  std::size_t support_vectors = 0;
  std::size_t margin_errors = 0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (r.coef[i] != 0.0) ++support_vectors;
    // Margin error: y*f(x) strictly inside the (rescaled) unit margin. Free
    // SVs sit at y*f = 1 only up to the solver tolerance, so test well below
    // it; the nu-property bounds the strict violators.
    if (train.y[i] * model.decision_value(train.X.row(i)) < 0.99) ++margin_errors;
  }
  const auto frac = [&](std::size_t k) {
    return static_cast<double>(k) / static_cast<double>(train.size());
  };
  EXPECT_LE(frac(margin_errors), nu + 0.05);      // nu upper-bounds margin errors
  EXPECT_GE(frac(support_vectors), nu - 0.05);    // nu lower-bounds SV fraction
}

TEST(NuSvc, LargerNuGivesMoreSupportVectors) {
  const Dataset train = training_data(0.1);
  auto sv_count = [&](double nu) {
    const NuSvcResult r = solve_nu_svc(train, options_with(nu));
    std::size_t svs = 0;
    for (const double c : r.coef)
      if (c != 0.0) ++svs;
    return svs;
  };
  EXPECT_GT(sv_count(0.5), sv_count(0.1));
}

TEST(NuSvc, AgreesWithCSvcAccuracy) {
  // nu-SVC and C-SVC trace the same regularization path; at comparable
  // operating points their accuracies should match closely.
  const Dataset train = training_data();
  const Dataset test = svmdata::synthetic::gaussian_blobs(
      {.n = 300, .d = 6, .separation = 2.0, .seed = 101, .draw = 1});

  const NuSvcResult nu_result = solve_nu_svc(train, options_with(0.25));
  const auto nu_model = nu_result.to_model(train.X, options_with(0.25).kernel);

  svmbaseline::BaselineOptions c_options;
  c_options.C = 4.0;
  c_options.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  const auto c_result = svmbaseline::solve_libsvm_like(train, c_options);
  const auto c_model =
      svmcore::build_model(train, c_result.alpha, c_result.rho, c_options.kernel);

  EXPECT_NEAR(nu_model.accuracy(test), c_model.accuracy(test), 0.05);
}

TEST(NuSvc, EqualityConstraintsHold) {
  const Dataset train = training_data();
  const NuSvcResult r = solve_nu_svc(train, options_with(0.3));
  // After rescaling, coef_i = alpha_i y_i / r: sum coef = 0 (both per-class
  // sums were nu*l/2 before scaling).
  double sum = 0.0;
  for (const double c : r.coef) sum += c;
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(NuSvc, ShrinkingOnOffSameAnswer) {
  const Dataset train = training_data();
  NuSvcOptions with = options_with(0.25);
  NuSvcOptions without = options_with(0.25);
  without.use_shrinking = false;
  const auto a = solve_nu_svc(train, with);
  const auto b = solve_nu_svc(train, without);
  EXPECT_NEAR(a.rho, b.rho, 1e-2);
  const auto model_a = a.to_model(train.X, with.kernel);
  const auto model_b = b.to_model(train.X, without.kernel);
  EXPECT_NEAR(model_a.accuracy(train), model_b.accuracy(train), 0.01);
}

TEST(NuSvc, RejectsInfeasibleNu) {
  // 90/10 imbalance: nu_max = 0.2.
  const Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = 200, .d = 4, .separation = 2.0, .positive_fraction = 0.1, .seed = 103});
  EXPECT_THROW((void)solve_nu_svc(train, options_with(0.5)), std::invalid_argument);
  EXPECT_NO_THROW((void)solve_nu_svc(train, options_with(0.1)));
}

TEST(NuSvc, RejectsBadArguments) {
  const Dataset train = training_data();
  EXPECT_THROW((void)solve_nu_svc(train, options_with(0.0)), std::invalid_argument);
  EXPECT_THROW((void)solve_nu_svc(train, options_with(1.5)), std::invalid_argument);
  Dataset one_class;
  one_class.X.add_row(std::vector<svmdata::Feature>{{0, 1.0}});
  one_class.X.add_row(std::vector<svmdata::Feature>{{0, 2.0}});
  one_class.y = {1.0, 1.0};
  EXPECT_THROW((void)solve_nu_svc(one_class, options_with(0.5)), std::invalid_argument);
}

}  // namespace
