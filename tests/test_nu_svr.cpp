#include <gtest/gtest.h>

#include <cmath>

#include "baseline/nu_svr.hpp"
#include "baseline/svr.hpp"
#include "util/rng.hpp"

namespace {

using svmbaseline::NuSvrOptions;
using svmbaseline::NuSvrResult;
using svmbaseline::solve_nu_svr;
using svmdata::CsrMatrix;
using svmdata::Feature;
using svmkernel::KernelParams;
using svmkernel::KernelType;

struct Regression1D {
  CsrMatrix X;
  std::vector<double> y;
};

template <typename Fn>
Regression1D make_1d(std::size_t n, double lo, double hi, Fn fn, double noise = 0.0,
                     std::uint64_t seed = 1) {
  svmutil::Rng rng(seed);
  Regression1D out;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.X.add_row(std::vector<Feature>{{0, x}});
    out.y.push_back(fn(x) + (noise > 0 ? rng.normal(0.0, noise) : 0.0));
  }
  return out;
}

NuSvrOptions options_with(double nu, double C = 10.0) {
  NuSvrOptions o;
  o.nu = nu;
  o.C = C;
  o.eps = 1e-4;
  o.kernel = KernelParams{KernelType::linear, 1.0, 0.0, 3};
  return o;
}

TEST(NuSvr, FitsLinearFunction) {
  const auto data = make_1d(50, -2.0, 2.0, [](double x) { return 1.5 * x - 0.5; });
  const NuSvrResult r = solve_nu_svr(data.X, data.y, options_with(0.5, 100.0));
  ASSERT_TRUE(r.converged);
  const auto model = r.to_model(data.X, options_with(0.5).kernel);
  for (std::size_t i = 0; i < data.y.size(); i += 5)
    EXPECT_NEAR(model.decision_value(data.X.row(i)), data.y[i], 0.1);
}

TEST(NuSvr, NuControlsTubeWidth) {
  // Larger nu => narrower adaptive tube (more samples allowed outside a
  // tighter tube... precisely: the tube shrinks as nu grows).
  const auto data = make_1d(80, 0.0, 6.283, [](double x) { return std::sin(x); }, 0.1, 3);
  NuSvrOptions small_nu = options_with(0.1);
  small_nu.kernel = KernelParams::rbf_with_sigma_sq(1.0);
  NuSvrOptions large_nu = options_with(0.7);
  large_nu.kernel = KernelParams::rbf_with_sigma_sq(1.0);
  const double tube_small = solve_nu_svr(data.X, data.y, small_nu).epsilon_tube;
  const double tube_large = solve_nu_svr(data.X, data.y, large_nu).epsilon_tube;
  EXPECT_GT(tube_small, 0.0);
  EXPECT_GT(tube_large, 0.0);
  EXPECT_LT(tube_large, tube_small);
}

TEST(NuSvr, NuLowerBoundsSupportVectorFraction) {
  const auto data = make_1d(100, 0.0, 6.283, [](double x) { return std::sin(x); }, 0.05, 5);
  const double nu = 0.4;
  NuSvrOptions options = options_with(nu);
  options.kernel = KernelParams::rbf_with_sigma_sq(1.0);
  const NuSvrResult r = solve_nu_svr(data.X, data.y, options);
  std::size_t svs = 0;
  for (const double c : r.coef)
    if (c != 0.0) ++svs;
  EXPECT_GE(static_cast<double>(svs) / static_cast<double>(data.y.size()), nu - 0.05);
}

TEST(NuSvr, EqualityAndBoxConstraints) {
  const auto data = make_1d(60, -1.0, 3.0, [](double x) { return x * x / 3.0; }, 0.05, 7);
  NuSvrOptions options = options_with(0.3, 2.0);
  options.kernel = KernelParams::rbf_with_sigma_sq(2.0);
  const NuSvrResult r = solve_nu_svr(data.X, data.y, options);
  double sum = 0.0;
  for (const double c : r.coef) {
    EXPECT_GE(c, -options.C - 1e-9);
    EXPECT_LE(c, options.C + 1e-9);
    sum += c;
  }
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(NuSvr, ValidatesInput) {
  CsrMatrix X;
  X.add_row(std::vector<Feature>{{0, 1.0}});
  X.add_row(std::vector<Feature>{{0, 2.0}});
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)solve_nu_svr(X, y, options_with(0.0)), std::invalid_argument);
  EXPECT_THROW((void)solve_nu_svr(X, y, options_with(1.5)), std::invalid_argument);
  EXPECT_THROW((void)solve_nu_svr(X, std::vector<double>{1.0}, options_with(0.5)),
               std::invalid_argument);
}

TEST(NuSvr, MatchesEpsilonSvrAtInducedTube) {
  // Train nu-SVR, read off its induced tube, then train epsilon-SVR with
  // that tube: the two fits should coincide (the classic equivalence).
  const auto data = make_1d(60, 0.0, 5.0, [](double x) { return std::cos(x); }, 0.05, 9);
  NuSvrOptions nu_options = options_with(0.4, 5.0);
  nu_options.kernel = KernelParams::rbf_with_sigma_sq(1.0);
  const NuSvrResult nu_result = solve_nu_svr(data.X, data.y, nu_options);
  ASSERT_GT(nu_result.epsilon_tube, 0.0);

  svmbaseline::SvrOptions eps_options;
  eps_options.C = 5.0;
  eps_options.epsilon_tube = nu_result.epsilon_tube;
  eps_options.eps = 1e-4;
  eps_options.kernel = nu_options.kernel;
  const auto eps_result = svmbaseline::solve_svr(data.X, data.y, eps_options);

  const auto nu_model = nu_result.to_model(data.X, nu_options.kernel);
  const auto eps_model = eps_result.to_model(data.X, eps_options.kernel);
  for (std::size_t i = 0; i < data.y.size(); i += 6)
    EXPECT_NEAR(nu_model.decision_value(data.X.row(i)),
                eps_model.decision_value(data.X.row(i)), 0.02);
}

}  // namespace
