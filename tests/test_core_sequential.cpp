#include <gtest/gtest.h>

#include <cmath>

#include "core/objective.hpp"
#include "core/sequential_smo.hpp"
#include "data/synthetic.hpp"

namespace {

using svmcore::SequentialResult;
using svmcore::solve_sequential;
using svmcore::SolverParams;
using svmdata::Dataset;
using svmdata::Feature;
using svmkernel::KernelParams;
using svmkernel::KernelType;

Dataset two_points() {
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.X.add_row(std::vector<Feature>{{0, -1.0}});
  d.y = {1.0, -1.0};
  return d;
}

SolverParams linear_params(double C = 10.0, double eps = 1e-4) {
  SolverParams p;
  p.C = C;
  p.eps = eps;
  p.kernel = KernelParams{KernelType::linear, 1.0, 0.0, 3};
  return p;
}

TEST(Sequential, TwoPointAnalyticSolution) {
  // Points at x=+1 (y=+1) and x=-1 (y=-1): w = 2*alpha, dual objective
  // 2*alpha - 2*alpha^2, maximized at alpha = 1/2 (then w = 1, margin 1 at
  // both points, boundary at x = 0).
  const SequentialResult r = solve_sequential(two_points(), linear_params());
  EXPECT_TRUE(r.stats.converged);
  EXPECT_NEAR(r.alpha[0], 0.5, 1e-3);
  EXPECT_NEAR(r.alpha[1], 0.5, 1e-3);
  EXPECT_NEAR(r.beta, 0.0, 1e-3);
}

TEST(Sequential, TwoPointBoundedByC) {
  // With C = 0.1 < 1/2, both alphas hit the bound.
  const SequentialResult r = solve_sequential(two_points(), linear_params(0.1));
  EXPECT_NEAR(r.alpha[0], 0.1, 1e-9);
  EXPECT_NEAR(r.alpha[1], 0.1, 1e-9);
}

TEST(Sequential, AsymmetricTwoPoints) {
  // x1 = 3 (y=+1), x2 = 1 (y=-1): midpoint boundary at x = 2, so
  // f(x) = w*x - beta with f(3)=+1, f(1)=-1 -> w=1, beta=2.
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 3.0}});
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.y = {1.0, -1.0};
  const SequentialResult r = solve_sequential(d, linear_params(100.0, 1e-5));
  // w = alpha*(3) - alpha*(1) = 2 alpha = 1 -> alpha = 0.5.
  EXPECT_NEAR(r.alpha[0], 0.5, 1e-3);
  EXPECT_NEAR(r.alpha[1], 0.5, 1e-3);
  EXPECT_NEAR(r.beta, 2.0, 1e-2);
}

TEST(Sequential, FourPointXorWithRbf) {
  // XOR is not linearly separable; the RBF kernel must fit it exactly with
  // all four points as support vectors.
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}, {1, 1.0}});
  d.X.add_row(std::vector<Feature>{{0, -1.0}, {1, -1.0}});
  d.X.add_row(std::vector<Feature>{{0, 1.0}, {1, -1.0}});
  d.X.add_row(std::vector<Feature>{{0, -1.0}, {1, 1.0}});
  d.y = {1.0, 1.0, -1.0, -1.0};
  SolverParams p;
  p.C = 100.0;
  p.eps = 1e-5;
  p.kernel = KernelParams{KernelType::rbf, 0.5, 0.0, 3};
  const SequentialResult r = solve_sequential(d, p);
  EXPECT_TRUE(r.stats.converged);
  for (const double a : r.alpha) EXPECT_GT(a, 0.0);
  // By symmetry all four alphas are equal and beta = 0.
  EXPECT_NEAR(r.alpha[0], r.alpha[1], 1e-4);
  EXPECT_NEAR(r.alpha[0], r.alpha[2], 1e-4);
  EXPECT_NEAR(r.beta, 0.0, 1e-4);
}

TEST(Sequential, RejectsSingleClass) {
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.X.add_row(std::vector<Feature>{{0, 2.0}});
  d.y = {1.0, 1.0};
  EXPECT_THROW((void)solve_sequential(d, linear_params()), std::invalid_argument);
}

TEST(Sequential, RejectsTooFewSamples) {
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.y = {1.0};
  EXPECT_THROW((void)solve_sequential(d, linear_params()), std::invalid_argument);
}

TEST(Sequential, MaxIterationsCapRespected) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 200, .d = 8, .separation = 1.0, .label_noise = 0.1, .seed = 5});
  SolverParams p = linear_params(1.0, 1e-6);
  p.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  p.max_iterations = 10;
  const SequentialResult r = solve_sequential(d, p);
  EXPECT_FALSE(r.stats.converged);
  EXPECT_EQ(r.stats.iterations, 10u);
}

// Property sweep: at convergence the KKT conditions must hold for every
// kernel/C combination.
struct KktCase {
  KernelType kernel;
  double C;
  double sigma_sq_or_gamma;
};

class SequentialKktP : public ::testing::TestWithParam<KktCase> {};

TEST_P(SequentialKktP, KktConditionsHoldAtConvergence) {
  const KktCase config = GetParam();
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 120, .d = 6, .separation = 2.0, .label_noise = 0.05, .seed = 11});
  SolverParams p;
  p.C = config.C;
  p.eps = 1e-3;
  p.kernel = config.kernel == KernelType::rbf
                 ? KernelParams::rbf_with_sigma_sq(config.sigma_sq_or_gamma)
                 : KernelParams{config.kernel, config.sigma_sq_or_gamma, 1.0, 2};
  const SequentialResult r = solve_sequential(d, p);
  ASSERT_TRUE(r.stats.converged);

  const svmcore::KktReport report = svmcore::kkt_report(d, r.alpha, p);
  EXPECT_LE(report.gap, 2.0 * p.eps + 1e-9);
  EXPECT_LE(report.max_alpha_bound_violation, 1e-12);
  EXPECT_LE(report.equality_residual, 1e-8 * p.C * d.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SequentialKktP,
    ::testing::Values(KktCase{KernelType::rbf, 1.0, 4.0}, KktCase{KernelType::rbf, 32.0, 64.0},
                      KktCase{KernelType::rbf, 10.0, 0.5}, KktCase{KernelType::linear, 1.0, 1.0},
                      KktCase{KernelType::linear, 100.0, 1.0},
                      KktCase{KernelType::polynomial, 10.0, 0.5}));

TEST(DualObjective, MatchesHandComputation) {
  // Two samples at x = +-1, alpha = (0.5, 0.5), linear kernel:
  // L_D = sum(alpha) - 0.5 * sum_ij a_i a_j y_i y_j K_ij
  //     = 1 - 0.5 * (0.25*1 + 2*0.25*(+1)(-1)(-1) + 0.25*1) = 1 - 0.5 = 0.5.
  const Dataset d = two_points();
  const std::vector<double> alpha{0.5, 0.5};
  const double obj =
      svmcore::dual_objective(d, alpha, KernelParams{KernelType::linear, 1.0, 0.0, 3});
  EXPECT_NEAR(obj, 0.5, 1e-12);
}

TEST(DualObjective, ZeroAlphaIsZero) {
  const Dataset d = two_points();
  const std::vector<double> alpha{0.0, 0.0};
  EXPECT_DOUBLE_EQ(
      svmcore::dual_objective(d, alpha, KernelParams{KernelType::linear, 1.0, 0.0, 3}), 0.0);
}

TEST(KktOracle, FlagsBoundViolations) {
  const Dataset d = two_points();
  SolverParams p = linear_params(1.0);
  const std::vector<double> alpha{1.5, -0.2};  // outside [0, C]
  const auto report = svmcore::kkt_report(d, alpha, p);
  EXPECT_NEAR(report.max_alpha_bound_violation, 0.5, 1e-12);  // 1.5 - C
  EXPECT_NEAR(report.equality_residual, 1.7, 1e-12);          // |1.5*1 + (-0.2)*(-1)|
}

TEST(Sequential, ObjectiveImprovesWithTighterTolerance) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 150, .d = 5, .separation = 1.5, .label_noise = 0.1, .seed = 13});
  SolverParams loose = linear_params(5.0, 1e-1);
  loose.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  SolverParams tight = loose;
  tight.eps = 1e-5;
  const double obj_loose =
      svmcore::dual_objective(d, solve_sequential(d, loose).alpha, loose.kernel);
  const double obj_tight =
      svmcore::dual_objective(d, solve_sequential(d, tight).alpha, tight.kernel);
  EXPECT_GE(obj_tight, obj_loose - 1e-9);  // dual objective is maximized
}

TEST(Sequential, StatsArepopulated) {
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 80, .d = 4, .separation = 2.0, .seed = 21});
  SolverParams p = linear_params(1.0, 1e-3);
  p.kernel = KernelParams::rbf_with_sigma_sq(2.0);
  const SequentialResult r = solve_sequential(d, p);
  EXPECT_GT(r.stats.iterations, 0u);
  EXPECT_GT(r.stats.kernel_evaluations, r.stats.iterations);  // 2n + 3 per iter
  EXPECT_GE(r.stats.solve_seconds, 0.0);
  EXPECT_LE(r.stats.final_beta_up + 2 * p.eps + 1e-12, r.stats.final_beta_low + 4 * p.eps);
}

}  // namespace
