// svmserve: the fault-tolerant serving engine. The load-bearing guarantees
// under test:
//   - deadline receives (Comm::recv_deadline) expire without throwing and
//     surface RankLost for dead sources — the primitive the frontend's
//     retry/hedge/failover logic stands on;
//   - a fault-free serve answers every request with the model's exact
//     decision values (bitwise at shards == 1);
//   - overload sheds at admission and the queue stays bounded;
//   - a rank death mid-run fails over to the replica with zero failed
//     responses and bit-identical answers to a fault-free run;
//   - dropped replies retry, injected-slow ranks get quarantined;
//   - World::cancel_context racing a concurrent shrink on the query path
//     unwinds cleanly on every rank (no hang, no stray exception).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "data/sparse.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"
#include "serve/serving.hpp"

namespace {

using svmcore::SvmModel;
using svmdata::CsrMatrix;
using svmdata::Feature;
using svmmpi::Comm;
using svmmpi::FaultInjector;
using svmmpi::FaultPlan;
using svmmpi::run_spmd;
using svmmpi::run_spmd_elastic;
using namespace svmserve;

constexpr double kNet = 5.0;  ///< net-model timeout backstop for all runs

// A small deterministic model: 24 hand-seeded support vectors in 4 dims,
// alternating-sign coefficients, RBF kernel.
SvmModel make_model() {
  CsrMatrix sv;
  std::vector<double> coeffs;
  for (std::size_t i = 0; i < 24; ++i) {
    const double a = 0.1 * static_cast<double>(i);
    const std::vector<Feature> row{{0, 1.0 - a},
                                   {1, a * a - 0.5},
                                   {2, (i % 3 == 0) ? -0.25 : 0.4},
                                   {3, 0.05 * static_cast<double>(i % 7)}};
    sv.add_row(row);
    coeffs.push_back((i % 2 == 0 ? 1.0 : -1.0) * (0.5 + 0.03 * static_cast<double>(i)));
  }
  svmkernel::KernelParams params;
  params.type = svmkernel::KernelType::rbf;
  params.gamma = 0.5;
  return SvmModel(params, std::move(sv), std::move(coeffs), 0.125);
}

CsrMatrix make_queries(std::size_t n) {
  CsrMatrix q;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 0.07 * static_cast<double>(i);
    const std::vector<Feature> row{
        {0, 0.3 + a}, {1, -0.2 + 0.5 * a}, {3, (i % 2 == 0) ? 0.9 : -0.6}};
    q.add_row(row);
  }
  return q;
}

ServeOptions base_options(int shards, int replicas) {
  ServeOptions opt;
  opt.shards = shards;
  opt.replicas = replicas;
  opt.deadline_s = 2.0;           // generous: CI boxes schedule coarsely
  opt.dispatch_timeout_s = 0.5;   // ditto; fault tests tighten this
  opt.net_model = svmmpi::NetModel{0.0, 0.0, kNet};
  return opt;
}

void expect_all_terminal(const ServeReport& report) {
  for (std::size_t i = 0; i < report.requests.size(); ++i)
    EXPECT_NE(report.requests[i].status, RequestStatus::pending) << "request " << i;
}

// --- recv_deadline primitive ------------------------------------------------

TEST(RecvDeadline, ExpiresFalseThenDeliversTrue) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> out;
      // Nothing sent yet (rank 1 waits for the go): expiry, not an exception.
      EXPECT_FALSE(comm.recv_deadline(out, 1, 9, 0.05));
      comm.send_value(1, 1, 1);
      EXPECT_TRUE(comm.recv_deadline(out, 1, 9, kNet));
      EXPECT_EQ(out, (std::vector<int>{4, 5}));
    } else {
      (void)comm.recv_value<int>(0, 1);
      const std::vector<int> data{4, 5};
      comm.send<int>(data, 0, 9);
    }
  });
}

TEST(RecvDeadline, DeadSourceThrowsRankLost) {
  FaultPlan plan;
  plan.die(1, 1);  // rank 1's first op: the send below never completes
  FaultInjector injector(plan);
  const auto report = run_spmd_elastic(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          std::vector<int> out;
          EXPECT_THROW((void)comm.recv_deadline(out, 1, 9, kNet), svmmpi::RankLost);
        } else {
          comm.send_value(7, 0, 9);
          ADD_FAILURE() << "rank 1 survived its scheduled death";
        }
      },
      svmmpi::NetModel{0.0, 0.0, kNet}, nullptr, &injector);
  EXPECT_EQ(report.failed_ranks, std::vector<int>{1});
}

// --- fault-free serving ------------------------------------------------------

TEST(Serving, SingleShardAnswersBitIdenticalToModel) {
  const SvmModel model = make_model();
  const CsrMatrix queries = make_queries(10);
  LoadSpec load;
  load.mode = ArrivalMode::closed_loop;
  load.requests = 32;
  load.clients = 2;
  load.seed = 3;

  const ServeReport report = run_serving(model, queries, load, base_options(1, 1));
  EXPECT_EQ(report.submitted, 32u);
  EXPECT_EQ(report.completed, 32u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(report.ranks_lost.empty());
  expect_all_terminal(report);
  for (const RequestRecord& rec : report.requests) {
    ASSERT_EQ(rec.status, RequestStatus::completed);
    // One shard covers the whole norm range: the served value is the exact
    // accumulate_rows sum minus beta — bitwise the model's decision value.
    EXPECT_EQ(rec.decision, model.decision_value(queries.row(rec.query_row)));
  }
}

TEST(Serving, ShardedDecisionsMatchModelClosely) {
  const SvmModel model = make_model();
  const CsrMatrix queries = make_queries(10);
  LoadSpec load;
  load.mode = ArrivalMode::closed_loop;
  load.requests = 24;
  load.clients = 3;
  load.seed = 11;

  const ServeReport report = run_serving(model, queries, load, base_options(2, 1));
  EXPECT_EQ(report.completed, 24u);
  for (const RequestRecord& rec : report.requests) {
    ASSERT_EQ(rec.status, RequestStatus::completed);
    // Two shards re-associate the coefficient sum (partial0 + partial1), so
    // equality is to rounding, not bitwise.
    EXPECT_NEAR(rec.decision, model.decision_value(queries.row(rec.query_row)), 1e-9);
  }
}

// --- overload ---------------------------------------------------------------

TEST(Serving, OverloadShedsAtAdmissionAndBoundsTheQueue) {
  const SvmModel model = make_model();
  const CsrMatrix queries = make_queries(8);
  LoadSpec load;
  load.mode = ArrivalMode::open_poisson;
  load.requests = 256;
  load.offered_qps = 1e6;  // effectively one instantaneous burst
  load.seed = 5;

  ServeOptions opt = base_options(1, 1);
  opt.queue_capacity = 16;
  opt.batch_max = 8;
  const ServeReport report = run_serving(model, queries, load, opt);

  EXPECT_EQ(report.submitted, 256u);
  expect_all_terminal(report);
  EXPECT_EQ(report.failed, 0u);
  // The burst is ~16x the queue: admission MUST have shed, and the queue
  // high-water mark must respect the configured bound.
  EXPECT_GT(report.shed_queue_full + report.shed_predicted_wait, 0u);
  EXPECT_LE(report.max_queue_depth, opt.queue_capacity);
  EXPECT_GT(report.completed, 0u);
  // Accepted requests stay within their deadline even at overload — that is
  // the whole point of shedding at admission.
  EXPECT_LT(report.latency_p99_s, opt.deadline_s);
}

// --- fault tolerance --------------------------------------------------------

TEST(ServeChaos, RankDeathFailsOverBitIdentically) {
  const SvmModel model = make_model();
  const CsrMatrix queries = make_queries(10);
  LoadSpec load;
  load.mode = ArrivalMode::closed_loop;
  load.requests = 40;
  load.clients = 2;
  load.seed = 7;
  ServeOptions opt = base_options(2, 2);
  opt.batch_max = 4;

  const ServeReport clean = run_serving(model, queries, load, opt);
  ASSERT_EQ(clean.completed, 40u);

  // Rank 1 (replica 0 of shard 0) dies while answering its first batch
  // (op 1 = ready send, op 2 = batch recv, op 3 = the fatal reply send).
  FaultPlan plan;
  plan.die(1, 3);
  opt.fault_plan = &plan;
  const ServeReport faulted = run_serving(model, queries, load, opt);

  EXPECT_EQ(faulted.completed, 40u);
  EXPECT_EQ(faulted.failed, 0u);
  EXPECT_GE(faulted.failovers, 1u);
  ASSERT_EQ(faulted.ranks_lost.size(), 1u);
  EXPECT_EQ(faulted.ranks_lost[0], 1);
  // Replicas hold identical shard slices: who answered must not change a
  // single bit of any decision value.
  for (std::size_t i = 0; i < load.requests; ++i) {
    ASSERT_EQ(faulted.requests[i].status, RequestStatus::completed) << "request " << i;
    EXPECT_EQ(faulted.requests[i].query_row, clean.requests[i].query_row);
    EXPECT_EQ(faulted.requests[i].decision, clean.requests[i].decision) << "request " << i;
  }
}

TEST(ServeChaos, DroppedReplyRetriesOnReplica) {
  const SvmModel model = make_model();
  const CsrMatrix queries = make_queries(6);
  LoadSpec load;
  load.mode = ArrivalMode::closed_loop;
  load.requests = 16;
  load.clients = 2;
  load.seed = 13;
  ServeOptions opt = base_options(1, 2);
  opt.dispatch_timeout_s = 0.05;  // a dropped reply should not stall long

  // Rank 1's first reply send (op 3) is swallowed on the wire.
  FaultPlan plan;
  plan.drop(1, 3);
  opt.fault_plan = &plan;
  const ServeReport report = run_serving(model, queries, load, opt);

  EXPECT_EQ(report.completed, 16u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(report.retries, 1u);
  EXPECT_TRUE(report.ranks_lost.empty());
  for (const RequestRecord& rec : report.requests) {
    ASSERT_EQ(rec.status, RequestStatus::completed);
    EXPECT_EQ(rec.decision, model.decision_value(queries.row(rec.query_row)));
  }
}

TEST(ServeChaos, InjectedSlowRankIsQuarantined) {
  const SvmModel model = make_model();
  const CsrMatrix queries = make_queries(6);
  LoadSpec load;
  load.mode = ArrivalMode::closed_loop;
  load.requests = 24;
  load.clients = 2;
  load.seed = 17;
  ServeOptions opt = base_options(1, 2);
  opt.dispatch_timeout_s = 0.05;
  opt.quarantine_latency_factor = 2.0;
  opt.quarantine_cooldown_s = 30.0;  // stays ejected for the whole run

  // Replica 1 (rank 2) hangs a quarter second on its first batch receive —
  // far past the dispatch timeout. The frontend must penalize it, eject it,
  // and serve the rest of the run from rank 1.
  FaultPlan plan;
  plan.delay(2, 2, 0.25);
  opt.fault_plan = &plan;
  const ServeReport report = run_serving(model, queries, load, opt);

  EXPECT_EQ(report.completed, 24u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(report.quarantines, 1u);
  EXPECT_GE(report.retries, 1u);
  EXPECT_TRUE(report.ranks_lost.empty());
  for (const RequestRecord& rec : report.requests)
    ASSERT_EQ(rec.status, RequestStatus::completed);
}

// --- cancel_context vs shrink race ------------------------------------------

TEST(ServeChaos, CancelContextRacesShrinkOnQueryPath) {
  // A serve-shaped query loop (frontend round-robins queries, workers echo)
  // loses a worker mid-run; the frontend then cancels the query context from
  // a helper thread WHILE every survivor concurrently attempts shrink() on
  // that same context. Whichever side of the race each rank lands on, it
  // must unwind cleanly — shrunk or cancelled, never hung, never a stray
  // exception aborting the world.
  constexpr int kQueryTag = 40;
  constexpr int kAnswerTag = 41;
  FaultPlan plan;
  plan.die(2, 5);  // rank 2 dies receiving its third query
  FaultInjector injector(plan);
  std::atomic<int> shrunk{0};
  std::atomic<int> cancelled{0};

  const auto report = run_spmd_elastic(
      4,
      [&](Comm& comm) {
        const auto try_shrink = [&] {
          try {
            const Comm survivors = comm.shrink();
            (void)survivors;
            ++shrunk;
          } catch (const svmmpi::ContextCancelled&) {
            ++cancelled;
          } catch (const svmmpi::TimeoutError&) {
            // A peer left the agreement after cancellation landed there
            // first; still a clean local unwind.
            ++cancelled;
          } catch (const svmmpi::RankLost&) {
            ++cancelled;
          }
        };
        if (comm.rank() == 0) {
          try {
            for (int i = 0;; ++i) {
              const int target = 1 + i % 3;
              comm.send_value(i, target, kQueryTag);
              std::vector<int> answer;
              if (!comm.recv_deadline(answer, target, kAnswerTag, kNet)) break;
            }
          } catch (const svmmpi::RankLost&) {
          }
          std::thread canceller(
              [&comm] { comm.world().cancel_context(comm.context_id()); });
          try_shrink();
          canceller.join();
        } else {
          try {
            for (;;) {
              const auto query = comm.recv<int>(0, kQueryTag);
              comm.send<int>(query, 0, kAnswerTag);
            }
          } catch (const svmmpi::ContextCancelled&) {
            // Woken by the racing cancel; fall through into shrink anyway —
            // that IS the race under test.
          } catch (const svmmpi::RankLost&) {
          }
          try_shrink();
        }
      },
      svmmpi::NetModel{0.0, 0.0, 2.0}, nullptr, &injector);

  EXPECT_EQ(report.failed_ranks, std::vector<int>{2});
  // Every survivor reached exactly one terminal state.
  EXPECT_EQ(shrunk.load() + cancelled.load(), 3);
}

}  // namespace
