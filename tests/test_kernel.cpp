#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "kernel/kernel.hpp"
#include "kernel/row_eval.hpp"
#include "util/rng.hpp"

namespace {

using svmdata::CsrMatrix;
using svmdata::Dataset;
using svmdata::Feature;
using namespace svmkernel;

Dataset test_data() {
  return svmdata::synthetic::gaussian_blobs({.n = 30, .d = 6, .separation = 2.0, .seed = 17});
}

class KernelTypesP : public ::testing::TestWithParam<KernelType> {
 protected:
  static KernelParams params_for(KernelType type) {
    KernelParams p;
    p.type = type;
    p.gamma = 0.5;
    p.coef0 = 1.0;
    p.degree = 3;
    return p;
  }
};

TEST_P(KernelTypesP, Symmetry) {
  const Dataset d = test_data();
  const Kernel kernel(params_for(GetParam()));
  const auto sq = d.X.row_squared_norms();
  for (std::size_t i = 0; i < 10; ++i)
    for (std::size_t j = 0; j < 10; ++j)
      EXPECT_DOUBLE_EQ(kernel.eval(d.X.row(i), d.X.row(j), sq[i], sq[j]),
                       kernel.eval(d.X.row(j), d.X.row(i), sq[j], sq[i]));
}

TEST_P(KernelTypesP, NameRoundTrip) {
  const KernelType type = GetParam();
  EXPECT_EQ(kernel_type_from_string(to_string(type)), type);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTypesP,
                         ::testing::Values(KernelType::rbf, KernelType::linear,
                                           KernelType::polynomial, KernelType::sigmoid));

TEST(Rbf, SelfSimilarityIsOne) {
  const Dataset d = test_data();
  const Kernel kernel(KernelParams::rbf_with_sigma_sq(4.0));
  const auto sq = d.X.row_squared_norms();
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_DOUBLE_EQ(kernel.eval(d.X.row(i), d.X.row(i), sq[i], sq[i]), 1.0);
}

TEST(Rbf, ValuesInUnitInterval) {
  const Dataset d = test_data();
  const Kernel kernel(KernelParams::rbf_with_sigma_sq(4.0));
  const auto sq = d.X.row_squared_norms();
  for (std::size_t i = 0; i < d.size(); ++i)
    for (std::size_t j = 0; j < d.size(); ++j) {
      const double k = kernel.eval(d.X.row(i), d.X.row(j), sq[i], sq[j]);
      EXPECT_GT(k, 0.0);
      EXPECT_LE(k, 1.0);
    }
}

TEST(Rbf, MatchesClosedForm) {
  CsrMatrix m;
  m.add_row(std::vector<Feature>{{0, 1.0}, {1, 2.0}});
  m.add_row(std::vector<Feature>{{0, 3.0}, {1, -1.0}});
  const auto sq = m.row_squared_norms();
  const double gamma = 0.25;
  const Kernel kernel(KernelParams{KernelType::rbf, gamma, 0.0, 3});
  const double dist_sq = (1.0 - 3.0) * (1.0 - 3.0) + (2.0 + 1.0) * (2.0 + 1.0);
  EXPECT_NEAR(kernel.eval(m.row(0), m.row(1), sq[0], sq[1]), std::exp(-gamma * dist_sq), 1e-15);
}

TEST(Rbf, SigmaSqParameterization) {
  // Table III reports sigma^2; gamma = 1/sigma^2.
  const KernelParams p = KernelParams::rbf_with_sigma_sq(64.0);
  EXPECT_DOUBLE_EQ(p.gamma, 1.0 / 64.0);
  EXPECT_THROW(Kernel(KernelParams{KernelType::rbf, 0.0, 0.0, 3}), std::invalid_argument);
}

TEST(Linear, EqualsDotProduct) {
  const Dataset d = test_data();
  const Kernel kernel(KernelParams{KernelType::linear, 1.0, 0.0, 3});
  const auto sq = d.X.row_squared_norms();
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(kernel.eval(d.X.row(i), d.X.row(j), sq[i], sq[j]),
                       CsrMatrix::dot(d.X.row(i), d.X.row(j)));
}

TEST(Polynomial, MatchesClosedForm) {
  CsrMatrix m;
  m.add_row(std::vector<Feature>{{0, 2.0}});
  m.add_row(std::vector<Feature>{{0, 3.0}});
  const auto sq = m.row_squared_norms();
  const Kernel kernel(KernelParams{KernelType::polynomial, 0.5, 1.0, 3});
  // (0.5*6 + 1)^3 = 64
  EXPECT_DOUBLE_EQ(kernel.eval(m.row(0), m.row(1), sq[0], sq[1]), 64.0);
}

TEST(Sigmoid, MatchesClosedForm) {
  CsrMatrix m;
  m.add_row(std::vector<Feature>{{0, 1.0}});
  m.add_row(std::vector<Feature>{{0, 2.0}});
  const auto sq = m.row_squared_norms();
  const Kernel kernel(KernelParams{KernelType::sigmoid, 0.5, -0.5, 3});
  EXPECT_DOUBLE_EQ(kernel.eval(m.row(0), m.row(1), sq[0], sq[1]), std::tanh(0.5 * 2.0 - 0.5));
}

TEST(KernelCounters, CountEvaluations) {
  const Dataset d = test_data();
  Kernel kernel(KernelParams::rbf_with_sigma_sq(4.0));
  const auto sq = d.X.row_squared_norms();
  EXPECT_EQ(kernel.evaluations(), 0u);
  (void)kernel.eval(d.X.row(0), d.X.row(1), sq[0], sq[1]);
  (void)kernel.eval(d.X.row(1), d.X.row(2), sq[1], sq[2]);
  EXPECT_EQ(kernel.evaluations(), 2u);
  kernel.reset_evaluations();
  EXPECT_EQ(kernel.evaluations(), 0u);
}

TEST(KernelParsing, RejectsUnknownName) {
  EXPECT_THROW((void)kernel_type_from_string("wavelet"), std::invalid_argument);
  EXPECT_EQ(kernel_type_from_string("gaussian"), KernelType::rbf);
  EXPECT_EQ(kernel_type_from_string("poly"), KernelType::polynomial);
}

TEST(RowEval, BatchMatchesScalarEvaluation) {
  const Dataset d = test_data();
  const Kernel kernel(KernelParams::rbf_with_sigma_sq(2.0));
  const auto sq = d.X.row_squared_norms();
  const auto query = d.X.row(3);
  const auto batch = eval_all_rows(kernel, d.X, sq, query, sq[3], /*parallel=*/false);
  ASSERT_EQ(batch.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], kernel.eval(d.X.row(i), query, sq[i], sq[3]));
}

TEST(RowEval, ParallelEqualsSerial) {
  const Dataset d = test_data();
  const Kernel kernel(KernelParams::rbf_with_sigma_sq(2.0));
  const auto sq = d.X.row_squared_norms();
  const auto query = d.X.row(0);
  const auto serial = eval_all_rows(kernel, d.X, sq, query, sq[0], false);
  const auto parallel = eval_all_rows(kernel, d.X, sq, query, sq[0], true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], parallel[i]);
}

TEST(RowEval, SubrangeOffsets) {
  const Dataset d = test_data();
  const Kernel kernel(KernelParams::rbf_with_sigma_sq(2.0));
  const auto sq = d.X.row_squared_norms();
  const auto query = d.X.row(0);
  std::vector<double> out(5);
  eval_rows(kernel, d.X, sq, query, sq[0], 10, 15, out);
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_DOUBLE_EQ(out[k], kernel.eval(d.X.row(10 + k), query, sq[10 + k], sq[0]));
}

TEST(GramMatrix, RbfIsPositiveSemiDefinite) {
  // Gershgorin-free check: x' K x >= 0 for a bunch of random x.
  const Dataset d = svmdata::synthetic::gaussian_blobs(
      {.n = 20, .d = 4, .separation = 1.0, .seed = 23});
  const Kernel kernel(KernelParams::rbf_with_sigma_sq(2.0));
  const auto sq = d.X.row_squared_norms();
  const std::size_t n = d.size();
  std::vector<double> K(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      K[i * n + j] = kernel.eval(d.X.row(i), d.X.row(j), sq[i], sq[j]);
  svmutil::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.normal();
    double quad = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) quad += x[i] * K[i * n + j] * x[j];
    EXPECT_GE(quad, -1e-9);
  }
}

}  // namespace
