#include <gtest/gtest.h>

#include "baseline/libsvm_like.hpp"
#include "core/objective.hpp"
#include "core/sequential_smo.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"

namespace {

using svmbaseline::BaselineOptions;
using svmbaseline::BaselineResult;
using svmbaseline::solve_libsvm_like;
using svmdata::Dataset;
using svmdata::Feature;
using svmkernel::KernelParams;
using svmkernel::KernelType;

Dataset training_data() {
  return svmdata::synthetic::gaussian_blobs(
      {.n = 200, .d = 6, .separation = 1.8, .label_noise = 0.05, .seed = 71});
}

BaselineOptions default_options() {
  BaselineOptions o;
  o.C = 8.0;
  o.eps = 1e-3;
  o.kernel = KernelParams::rbf_with_sigma_sq(4.0);
  o.cache_mb = 16;
  return o;
}

TEST(Baseline, TwoPointAnalyticSolution) {
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.X.add_row(std::vector<Feature>{{0, -1.0}});
  d.y = {1.0, -1.0};
  BaselineOptions o = default_options();
  o.kernel = KernelParams{KernelType::linear, 1.0, 0.0, 3};
  o.C = 10.0;
  o.eps = 1e-5;
  const BaselineResult r = solve_libsvm_like(d, o);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.alpha[0], 0.5, 1e-3);  // dual optimum: 2a - 2a^2 -> a = 1/2
  EXPECT_NEAR(r.alpha[1], 0.5, 1e-3);
  EXPECT_NEAR(r.rho, 0.0, 1e-3);
}

TEST(Baseline, MatchesSequentialObjective) {
  // Different algorithms (WSS2 vs worst-violator), same optimization problem:
  // the dual objective values must agree to tolerance-level slack.
  const Dataset d = training_data();
  const BaselineOptions o = default_options();
  svmcore::SolverParams p;
  p.C = o.C;
  p.eps = o.eps;
  p.kernel = o.kernel;
  const auto baseline = solve_libsvm_like(d, o);
  const auto reference = svmcore::solve_sequential(d, p);
  const double obj_baseline = svmcore::dual_objective(d, baseline.alpha, o.kernel);
  const double obj_reference = svmcore::dual_objective(d, reference.alpha, p.kernel);
  EXPECT_NEAR(obj_baseline, obj_reference, 0.02 * std::abs(obj_reference) + 0.05);
  EXPECT_NEAR(baseline.rho, reference.beta, 0.05);
}

TEST(Baseline, KktConditionsHold) {
  const Dataset d = training_data();
  const BaselineOptions o = default_options();
  const BaselineResult r = solve_libsvm_like(d, o);
  ASSERT_TRUE(r.converged);
  svmcore::SolverParams p;
  p.C = o.C;
  p.eps = o.eps;
  p.kernel = o.kernel;
  const auto report = svmcore::kkt_report(d, r.alpha, p);
  EXPECT_LE(report.gap, 2.0 * o.eps + 1e-6);
  EXPECT_LE(report.max_alpha_bound_violation, 1e-9);
}

TEST(Baseline, ShrinkingOnOffSameAnswer) {
  const Dataset d = training_data();
  BaselineOptions with = default_options();
  BaselineOptions without = default_options();
  without.use_shrinking = false;
  const auto a = solve_libsvm_like(d, with);
  const auto b = solve_libsvm_like(d, without);
  const double obj_a = svmcore::dual_objective(d, a.alpha, with.kernel);
  const double obj_b = svmcore::dual_objective(d, b.alpha, without.kernel);
  EXPECT_NEAR(obj_a, obj_b, 0.01 * std::abs(obj_b) + 0.05);
  EXPECT_NEAR(a.rho, b.rho, 0.05);
}

TEST(Baseline, OpenMpOnOffIdenticalResult) {
  const Dataset d = training_data();
  BaselineOptions serial = default_options();
  serial.use_openmp = false;
  BaselineOptions parallel = default_options();
  parallel.use_openmp = true;
  const auto a = solve_libsvm_like(d, serial);
  const auto b = solve_libsvm_like(d, parallel);
  ASSERT_EQ(a.alpha.size(), b.alpha.size());
  for (std::size_t i = 0; i < a.alpha.size(); ++i) EXPECT_EQ(a.alpha[i], b.alpha[i]);
  EXPECT_EQ(a.rho, b.rho);
}

TEST(Baseline, CacheImprovesHitRateWithBudget) {
  const Dataset d = training_data();
  BaselineOptions tiny = default_options();
  tiny.cache_mb = 0;  // cache admits single rows only, evicting constantly
  BaselineOptions roomy = default_options();
  roomy.cache_mb = 64;
  const auto cold = solve_libsvm_like(d, tiny);
  const auto warm = solve_libsvm_like(d, roomy);
  EXPECT_GT(warm.cache_hit_rate, cold.cache_hit_rate);
  // Identical math regardless of caching (float rows in both paths).
  for (std::size_t i = 0; i < cold.alpha.size(); ++i) EXPECT_EQ(cold.alpha[i], warm.alpha[i]);
}

TEST(Baseline, FewerKernelEvaluationsWithCache) {
  const Dataset d = training_data();
  BaselineOptions tiny = default_options();
  tiny.cache_mb = 0;
  BaselineOptions roomy = default_options();
  roomy.cache_mb = 64;
  EXPECT_LT(solve_libsvm_like(d, roomy).kernel_evaluations,
            solve_libsvm_like(d, tiny).kernel_evaluations);
}

TEST(Baseline, ModelAccuracyOnHeldOut) {
  const Dataset train = training_data();
  const Dataset test = svmdata::synthetic::gaussian_blobs(
      {.n = 300, .d = 6, .separation = 1.8, .label_noise = 0.0, .seed = 71, .draw = 1});
  const BaselineOptions o = default_options();
  const BaselineResult r = solve_libsvm_like(train, o);
  const auto model = svmcore::build_model(train, r.alpha, r.rho, o.kernel);
  // Separation 1.8 bounds the Bayes accuracy near Phi(0.9) ~ 0.82.
  EXPECT_GT(model.accuracy(test), 0.68);
}

TEST(Baseline, MaxIterationsCap) {
  BaselineOptions o = default_options();
  o.max_iterations = 5;
  const BaselineResult r = solve_libsvm_like(training_data(), o);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 5u);
}

TEST(Baseline, RejectsDegenerateInput) {
  Dataset d;
  d.X.add_row(std::vector<Feature>{{0, 1.0}});
  d.y = {1.0};
  EXPECT_THROW((void)solve_libsvm_like(d, default_options()), std::invalid_argument);
}

}  // namespace
