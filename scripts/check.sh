#!/usr/bin/env bash
# Tier-1 verification plus an AddressSanitizer pass over the kernel/engine
# layer. Run from the repo root:
#
#   scripts/check.sh            # full: tier-1 build+ctest, then ASan kernel tests
#   scripts/check.sh --tier1    # only the tier-1 build + full ctest suite
#   scripts/check.sh --asan     # only the ASan kernel/engine/cache tests
#
# The ASan pass rebuilds the kernel-layer tests under -DSVM_SANITIZE=address
# in a separate build tree (build-asan/) and runs the binaries directly; it
# exists to catch span-lifetime bugs in KernelRowCache pinning and the
# KernelEngine scatter buffers that a plain run cannot see.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=true
run_asan=true
case "${1:-}" in
  --tier1) run_asan=false ;;
  --asan) run_tier1=false ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--tier1|--asan]" >&2; exit 2 ;;
esac

if $run_tier1; then
  echo "=== tier-1: configure + build + ctest ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi

if $run_asan; then
  echo "=== asan: kernel/engine/cache tests under -fsanitize=address ==="
  cmake -B build-asan -S . -DSVM_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target \
    test_kernel test_kernel_cache test_kernel_engine test_engine_parity
  for t in test_kernel test_kernel_cache test_kernel_engine test_engine_parity; do
    echo "--- $t (asan) ---"
    ./build-asan/tests/"$t"
  done
fi

echo "ALL CHECKS PASSED"
