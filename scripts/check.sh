#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the layers that need them.
# Run from the repo root:
#
#   scripts/check.sh            # full: tier-1 build+ctest, ASan kernel tests, TSan chaos tests, perf smoke, obs
#   scripts/check.sh --tier1    # only the tier-1 build + full ctest suite
#   scripts/check.sh --asan     # only the ASan kernel/engine/cache tests
#   scripts/check.sh --tsan     # only the TSan chaos/fault-tolerance + obs tests
#   scripts/check.sh --perf     # only the pipelined-reconstruction perf smoke
#   scripts/check.sh --obs      # only the observability end-to-end checks
#   scripts/check.sh --sched    # only the multi-tenant scheduler checks
#   scripts/check.sh --simd     # only the SIMD/precision flavor checks
#   scripts/check.sh --serve    # only the prediction-serving checks
#   scripts/check.sh --pbm      # only the PBM-solver checks
#
# The ASan pass rebuilds the kernel-layer tests under -DSVM_SANITIZE=address
# in a separate build tree (build-asan/) and runs the binaries directly; it
# exists to catch span-lifetime bugs in KernelRowCache pinning and the
# KernelEngine scatter buffers that a plain run cannot see.
#
# The TSan pass rebuilds under -DSVM_SANITIZE=thread (build-tsan/) and runs
# the `chaos`- and `obs`-labelled ctest suites: the fault-injection,
# checkpoint/restart and elastic shrink-world tests plus the trace-recorder
# concurrency tests. Failure detection, World::mark_failed poking,
# Comm::agree, the generation hand-off in the elastic trainer and the
# lock-free per-thread trace rings are all cross-thread rendezvous under the
# simulated MPI world — exactly the code a data-race would corrupt silently
# in a plain run.
#
# The sched pass rebuilds the scheduler chaos suite under TSan and runs it
# (the dispatcher, watchdog, gang hand-off and pool-exit paths are all
# cross-thread rendezvous), then runs bench_scheduler --quick with tracing
# on, validates the per-job spans and the run report, and gates the emitted
# BENCH_scheduler.json against itself with tools/bench_diff (a self-diff
# must report zero regressions; a perturbed copy must be caught).
#
# The serve pass rebuilds the serving suite under TSan and runs the
# `serve`-labelled tests (frontend batcher, client threads and the worker
# ranks all rendezvous on the request queue, the mailbox deadline waits and
# the failure registry — the exact cross-thread surface a race would corrupt
# silently), then runs bench_serving --quick --assert (admission shedding
# bounded at 2x saturation, zero failed responses and bit-identical answers
# across a mid-run rank death) with tracing on, validates the serve spans and
# the run report, and gates the committed BENCH_serving.json with
# tools/bench_diff (self-diff quiet, perturbed copy caught).
#
# The pbm pass rebuilds the PBM solver suites under TSan and runs them (the
# block solves, the delta-sync ring and the shrink-world recovery replay are
# all cross-thread rendezvous under the simulated world), then runs
# bench_pbm --quick --assert (both solvers converge to the same KKT gap,
# SV-set agreement holds, and PBM moves >= 2x fewer bytes than SMO at
# p >= 8) with tracing on, validates the pbm spans and the run report, and
# gates the committed BENCH_pbm.json with tools/bench_diff (self-diff
# quiet, perturbed copy caught).
#
# The simd pass rebuilds the RowStore/engine-parity suites under UBSan with
# float-cast-overflow checking (build-ubsan/) — the f16 codec and the int8
# quantizer are exactly the code where a narrowing cast silently saturates —
# then runs bench_precision --assert (simd f64 bitwise vs scalar, reduced
# flavors within their disagreement gates, simd f32 >= 1.5x scalar double)
# and gates the committed BENCH_engine.json / BENCH_precision.json artifacts
# with tools/bench_diff (self-diff quiet, perturbed copy caught).
#
# The obs pass trains a small synthetic problem at p=4 with tracing and
# metrics enabled, validates the artifacts with tools/trace_validate
# (well-formed Chrome JSON, monotonic per-rank timestamps, balanced spans,
# all four instrumentation layers present, >= 2 counter tracks), validates
# the run report a bench emits, and runs the tracing-disabled overhead guard
# (< 2% on an SMO-shaped hot loop).
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=true
run_asan=true
run_tsan=true
run_perf=true
run_obs=true
run_sched=true
run_simd=true
run_serve=true
run_pbm=true
only() {  # only <step>: disable every step except the named one
  run_tier1=false; run_asan=false; run_tsan=false
  run_perf=false; run_obs=false; run_sched=false; run_simd=false
  run_serve=false; run_pbm=false
  eval "run_$1=true"
}
case "${1:-}" in
  --tier1) only tier1 ;;
  --asan) only asan ;;
  --tsan) only tsan ;;
  --perf) only perf ;;
  --obs) only obs ;;
  --sched) only sched ;;
  --simd) only simd ;;
  --serve) only serve ;;
  --pbm) only pbm ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--tier1|--asan|--tsan|--perf|--obs|--sched|--simd|--serve|--pbm]" >&2; exit 2 ;;
esac

if $run_tier1; then
  echo "=== tier-1: configure + build + ctest ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi

if $run_asan; then
  echo "=== asan: kernel/engine/cache tests under -fsanitize=address ==="
  cmake -B build-asan -S . -DSVM_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target \
    test_kernel test_kernel_cache test_kernel_engine test_engine_parity
  for t in test_kernel test_kernel_cache test_kernel_engine test_engine_parity; do
    echo "--- $t (asan) ---"
    ./build-asan/tests/"$t"
  done
fi

if $run_tsan; then
  echo "=== tsan: chaos/fault-tolerance tests under -fsanitize=thread ==="
  cmake -B build-tsan -S . -DSVM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target \
    test_mpisim_fault test_chaos_recovery test_elastic_shrink test_gradrecon_pipeline test_obs
  (cd build-tsan && ctest -L 'chaos|obs' --output-on-failure -j "$(nproc)")
fi

if $run_perf; then
  echo "=== perf smoke: pipelined reconstruction must not regress serial at p=4 ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_fig8_gradrecon
  # --assert makes the bench exit nonzero if the pipelined ring's
  # reconstruction wall time exceeds the serial ring's, if the modeled
  # network seconds fail to drop, or if bitwise model parity breaks.
  (cd build && ./bench/bench_fig8_gradrecon --quick --ranks 4 --assert)
fi

if $run_obs; then
  echo "=== obs: traced training run + artifact validation + overhead guard ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target \
    parallel_training trace_validate trace_analyze bench_pbm bench_trace_active \
    bench_micro_mpisim
  obs_dir=$(mktemp -d)
  trap 'rm -rf "$obs_dir"' EXIT
  # A p=4 traced run must produce a Chrome trace with spans from all four
  # layers (mpisim collective, kernel-engine batch, solver phase,
  # reconstruction ring step) and at least two counter tracks.
  ./build/examples/parallel_training --ranks 4 --n 800 \
    --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.json"
  ./build/tools/trace_validate "$obs_dir/trace.json" \
    --require-span solve,phase,smo_batch,allreduce,bcast,engine_pair_batch,ring_step,reconstruction \
    --min-counter-tracks 2
  ./build/tools/trace_validate --metrics "$obs_dir/metrics.json"
  # A bench's run report must validate too (active-set trajectory bench).
  ./build/bench/bench_trace_active --quick --metrics-out "$obs_dir/bench_metrics.json" >/dev/null
  ./build/tools/trace_validate --metrics "$obs_dir/bench_metrics.json"
  # Causal flow analysis on a p=8 PBM traced run: every flow start must be
  # finished on another rank (strict default), the compute/comm/blocked/
  # imbalance attribution must close to 100% +-2% on every round, and at
  # least one round must show nonzero comm on every rank — proof the flow
  # edges really bind senders to receivers.
  (cd "$obs_dir" && "$OLDPWD"/build/bench/bench_pbm --quick --datasets=higgs --ranks=8 \
    --trace-out "$obs_dir/pbm_trace.json" --metrics-out "$obs_dir/pbm_metrics.json" >/dev/null)
  ./build/tools/trace_validate "$obs_dir/pbm_trace.json" --require-span round,pbm_round
  ./build/tools/trace_analyze "$obs_dir/pbm_trace.json" --assert \
    --out "$obs_dir/pbm_analysis.json"
  # Tracing disabled must cost < 2% on an SMO-shaped hot loop.
  ./build/bench/bench_micro_mpisim --assert-obs-overhead
fi

if $run_sched; then
  echo "=== sched: TSan scheduler chaos suite + bench artifact gate ==="
  cmake -B build-tsan -S . -DSVM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target test_scheduler
  (cd build-tsan && ctest -R test_scheduler --output-on-failure)
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_scheduler bench_diff trace_validate
  sched_dir=$(mktemp -d)
  # Re-arm rather than replace the obs step's cleanup (full runs set both).
  trap 'rm -rf "${obs_dir:-}" "${sched_dir:-}"' EXIT
  # bench_scheduler exits nonzero if any regime loses accepted work; the
  # low-fault regime carries the trace/metrics artifacts.
  (cd "$sched_dir" && "$OLDPWD"/build/bench/bench_scheduler --quick     --trace-out "$sched_dir/trace.json" --metrics-out "$sched_dir/metrics.json")
  # --allow-dangling-flows: the chaos regimes kill ranks mid-flight, so some
  # flow starts legitimately never find their receiver.
  ./build/tools/trace_validate "$sched_dir/trace.json" --require-span job,solve \
    --allow-dangling-flows
  ./build/tools/trace_validate --metrics "$sched_dir/metrics.json"
  # The regression gate must be quiet on a self-diff and loud on a
  # perturbed candidate.
  ./build/tools/bench_diff "$sched_dir/BENCH_scheduler.json" "$sched_dir/BENCH_scheduler.json"
  sed 's/"jobs_lost": 0/"jobs_lost": 9/' "$sched_dir/BENCH_scheduler.json"     > "$sched_dir/BENCH_regressed.json"
  if ./build/tools/bench_diff "$sched_dir/BENCH_scheduler.json"       "$sched_dir/BENCH_regressed.json" > /dev/null; then
    echo "bench_diff failed to flag an injected regression" >&2
    exit 1
  fi
fi

if $run_serve; then
  echo "=== serve: TSan serving suite + bench artifact gate ==="
  cmake -B build-tsan -S . -DSVM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target test_serving
  (cd build-tsan && ctest -L serve --output-on-failure -j "$(nproc)")
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_serving bench_diff trace_validate
  serve_dir=$(mktemp -d)
  trap 'rm -rf "${obs_dir:-}" "${sched_dir:-}" "${simd_dir:-}" "${serve_dir:-}"' EXIT
  # --assert enforces the degradation contract: p99 under deadline with zero
  # shedding at 0.7x saturation, bounded-queue shedding with bounded
  # accepted-p99 at 2x, and a mid-run rank death answered with zero failures
  # and decisions bit-identical to the fault-free run. The low-fault regime
  # carries the trace/metrics artifacts. Runs in a scratch dir so the
  # committed BENCH_serving.json is not overwritten.
  (cd "$serve_dir" && "$OLDPWD"/build/bench/bench_serving --quick --assert \
    --trace-out "$serve_dir/trace.json" --metrics-out "$serve_dir/metrics.json")
  # --allow-dangling-flows: the serving bench injects a mid-run rank death,
  # so flows into the dead worker legitimately dangle.
  ./build/tools/trace_validate "$serve_dir/trace.json" \
    --require-span serve_batch,serve_eval --allow-dangling-flows
  ./build/tools/trace_validate --metrics "$serve_dir/metrics.json"
  # The committed artifact must be gate-clean against itself and the gate
  # must still be loud on a perturbed copy (requests_lost is lower-better).
  ./build/tools/bench_diff BENCH_serving.json BENCH_serving.json
  sed 's/"requests_lost": 0/"requests_lost": 9/' BENCH_serving.json \
    > "$serve_dir/BENCH_regressed.json"
  if ./build/tools/bench_diff BENCH_serving.json \
      "$serve_dir/BENCH_regressed.json" > /dev/null; then
    echo "bench_diff failed to flag an injected regression in BENCH_serving.json" >&2
    exit 1
  fi
fi

if $run_simd; then
  echo "=== simd: precision/parity suites under UBSan + flavor gates ==="
  cmake -B build-ubsan -S . -DSVM_SANITIZE=undefined,float-cast-overflow >/dev/null
  cmake --build build-ubsan -j --target test_row_store test_engine_parity
  for t in test_row_store test_engine_parity; do
    echo "--- $t (ubsan) ---"
    UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/"$t"
  done
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_precision bench_engine_backends bench_diff
  simd_dir=$(mktemp -d)
  trap 'rm -rf "${obs_dir:-}" "${sched_dir:-}" "${serve_dir:-}" "${simd_dir:-}"' EXIT
  # --assert: simd f64 must stay bitwise-equal to the scalar engines, the
  # reduced flavors must hold their disagreement gates, and simd f32 must
  # clear 1.5x single-core kernel-eval throughput over scalar double. Runs
  # in a scratch dir so the committed artifact is not overwritten.
  (cd "$simd_dir" && "$OLDPWD"/build/bench/bench_precision --quick --assert)
  # The committed artifacts must be gate-clean against themselves and the
  # gate must still be loud: perturb one throughput leaf in each and demand
  # bench_diff flags it.
  for artifact in BENCH_engine.json BENCH_precision.json; do
    ./build/tools/bench_diff "$artifact" "$artifact"
    sed 's/"\([a-z_]*per_s[a-z_]*\)": [0-9.eE+-]*/"\1": 1.0/' "$artifact" \
      > "$simd_dir/regressed.json"
    if ./build/tools/bench_diff "$artifact" "$simd_dir/regressed.json" > /dev/null; then
      echo "bench_diff failed to flag an injected regression in $artifact" >&2
      exit 1
    fi
  done
fi

if $run_pbm; then
  echo "=== pbm: TSan solver suites + bench artifact gate ==="
  cmake -B build-tsan -S . -DSVM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target test_pbm test_pbm_chaos
  (cd build-tsan && ctest -R 'test_pbm' --output-on-failure -j "$(nproc)")
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_pbm bench_diff trace_validate
  pbm_dir=$(mktemp -d)
  trap 'rm -rf "${obs_dir:-}" "${sched_dir:-}" "${serve_dir:-}" "${simd_dir:-}" "${pbm_dir:-}"' EXIT
  # --assert enforces: both solvers converge to the same KKT gap, the SV-set
  # Jaccard agreement holds, and PBM moves >= 2x fewer bytes than SMO at
  # p >= 8 on >= 2 datasets. The first p>=4 PBM run carries the trace and
  # metrics artifacts. Runs in a scratch dir so the committed BENCH_pbm.json
  # is not overwritten.
  (cd "$pbm_dir" && "$OLDPWD"/build/bench/bench_pbm --quick --assert \
    --trace-out "$pbm_dir/trace.json" --metrics-out "$pbm_dir/metrics.json")
  ./build/tools/trace_validate "$pbm_dir/trace.json" \
    --require-span solve,pbm_round,pbm_block_solve,pbm_sync
  ./build/tools/trace_validate --metrics "$pbm_dir/metrics.json"
  # The committed artifact must be gate-clean against itself and the gate
  # must still be loud on a perturbed copy (sv_agreement is higher-better).
  ./build/tools/bench_diff BENCH_pbm.json BENCH_pbm.json
  sed 's/"sv_agreement": [0-9.]*/"sv_agreement": 0.1/' BENCH_pbm.json \
    > "$pbm_dir/BENCH_regressed.json"
  if ./build/tools/bench_diff BENCH_pbm.json \
      "$pbm_dir/BENCH_regressed.json" > /dev/null; then
    echo "bench_diff failed to flag an injected regression in BENCH_pbm.json" >&2
    exit 1
  fi
fi

echo "ALL CHECKS PASSED"
