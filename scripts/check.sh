#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the layers that need them.
# Run from the repo root:
#
#   scripts/check.sh            # full: tier-1 build+ctest, ASan kernel tests, TSan chaos tests, perf smoke
#   scripts/check.sh --tier1    # only the tier-1 build + full ctest suite
#   scripts/check.sh --asan     # only the ASan kernel/engine/cache tests
#   scripts/check.sh --tsan     # only the TSan chaos/fault-tolerance tests
#   scripts/check.sh --perf     # only the pipelined-reconstruction perf smoke
#
# The ASan pass rebuilds the kernel-layer tests under -DSVM_SANITIZE=address
# in a separate build tree (build-asan/) and runs the binaries directly; it
# exists to catch span-lifetime bugs in KernelRowCache pinning and the
# KernelEngine scatter buffers that a plain run cannot see.
#
# The TSan pass rebuilds under -DSVM_SANITIZE=thread (build-tsan/) and runs
# the `chaos`-labelled ctest suite: the fault-injection, checkpoint/restart
# and elastic shrink-world tests. Failure detection, World::mark_failed
# poking, Comm::agree and the generation hand-off in the elastic trainer are
# all cross-thread rendezvous under the simulated MPI world — exactly the
# code a data-race would corrupt silently in a plain run.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=true
run_asan=true
run_tsan=true
run_perf=true
case "${1:-}" in
  --tier1) run_asan=false; run_tsan=false; run_perf=false ;;
  --asan) run_tier1=false; run_tsan=false; run_perf=false ;;
  --tsan) run_tier1=false; run_asan=false; run_perf=false ;;
  --perf) run_tier1=false; run_asan=false; run_tsan=false ;;
  "") ;;
  *) echo "usage: scripts/check.sh [--tier1|--asan|--tsan|--perf]" >&2; exit 2 ;;
esac

if $run_tier1; then
  echo "=== tier-1: configure + build + ctest ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi

if $run_asan; then
  echo "=== asan: kernel/engine/cache tests under -fsanitize=address ==="
  cmake -B build-asan -S . -DSVM_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target \
    test_kernel test_kernel_cache test_kernel_engine test_engine_parity
  for t in test_kernel test_kernel_cache test_kernel_engine test_engine_parity; do
    echo "--- $t (asan) ---"
    ./build-asan/tests/"$t"
  done
fi

if $run_tsan; then
  echo "=== tsan: chaos/fault-tolerance tests under -fsanitize=thread ==="
  cmake -B build-tsan -S . -DSVM_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target \
    test_mpisim_fault test_chaos_recovery test_elastic_shrink test_gradrecon_pipeline
  (cd build-tsan && ctest -L chaos --output-on-failure -j "$(nproc)")
fi

if $run_perf; then
  echo "=== perf smoke: pipelined reconstruction must not regress serial at p=4 ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_fig8_gradrecon
  # --assert makes the bench exit nonzero if the pipelined ring's
  # reconstruction wall time exceeds the serial ring's, if the modeled
  # network seconds fail to drop, or if bitwise model parity breaks.
  (cd build && ./bench/bench_fig8_gradrecon --quick --ranks 4 --assert)
fi

echo "ALL CHECKS PASSED"
