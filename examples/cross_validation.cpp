// Hyper-parameter selection by k-fold cross-validation, the procedure the
// paper uses to pick (C, sigma^2) for Table III (§V-C). Sweeps a small grid
// and reports mean validation accuracy per cell.
//
//   ./cross_validation [--n 1200] [--folds 5] [--ranks 2]
#include <cstdio>
#include <vector>

#include "core/trainer.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"n", "folds", "ranks"});
  const std::size_t n = flags.get_int("n", 1200);
  const std::size_t folds = flags.get_int("folds", 5);
  const int ranks = static_cast<int>(flags.get_int("ranks", 2));

  const svmdata::Dataset data = svmdata::synthetic::two_rings(
      {.n = n, .d = 4, .inner_radius = 1.0, .gap = 1.2, .thickness = 0.25, .seed = 5});

  const auto fold_indices = svmdata::kfold_indices(data.size(), folds, /*seed=*/17);

  const std::vector<double> c_grid{1.0, 10.0, 32.0};
  const std::vector<double> sigma_sq_grid{0.5, 4.0, 64.0};

  svmutil::TextTable table({"C", "sigma^2", "mean val acc", "mean #SV"});
  double best_acc = 0.0;
  double best_c = 0.0;
  double best_sigma_sq = 0.0;

  for (const double C : c_grid) {
    for (const double sigma_sq : sigma_sq_grid) {
      double acc_sum = 0.0;
      double sv_sum = 0.0;
      for (std::size_t fold = 0; fold < folds; ++fold) {
        // Train on all folds but one; validate on the held-out fold.
        std::vector<std::size_t> train_idx;
        for (std::size_t other = 0; other < folds; ++other)
          if (other != fold)
            train_idx.insert(train_idx.end(), fold_indices[other].begin(),
                             fold_indices[other].end());
        const svmdata::Dataset train = data.subset(train_idx);
        const svmdata::Dataset validate = data.subset(fold_indices[fold]);

        svmcore::SolverParams params;
        params.C = C;
        params.eps = 1e-3;
        params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(sigma_sq);
        svmcore::TrainOptions options;
        options.num_ranks = ranks;
        options.heuristic = svmcore::Heuristic::parse("Multi5pc");
        const auto result = svmcore::train(train, params, options);
        acc_sum += result.model.accuracy(validate);
        sv_sum += static_cast<double>(result.num_support_vectors());
      }
      const double mean_acc = acc_sum / static_cast<double>(folds);
      table.add_row({svmutil::TextTable::num(C, 1), svmutil::TextTable::num(sigma_sq, 1),
                     svmutil::TextTable::num(100.0 * mean_acc, 2),
                     svmutil::TextTable::num(sv_sum / static_cast<double>(folds), 0)});
      if (mean_acc > best_acc) {
        best_acc = mean_acc;
        best_c = C;
        best_sigma_sq = sigma_sq;
      }
    }
  }

  std::printf("%zu-fold cross-validation on two-rings (n=%zu, non-linearly separable)\n\n",
              folds, data.size());
  table.print();
  std::printf("\nselected: C=%.1f sigma^2=%.1f (%.2f%% validation accuracy)\n", best_c,
              best_sigma_sq, 100.0 * best_acc);
  return 0;
}
