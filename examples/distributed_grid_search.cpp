// Distributed model selection using communicator splitting: the world is
// divided into one sub-communicator per (C, sigma^2) grid cell; each group
// trains its cell's model SPMD, evaluates it distributed, and the results
// are combined with an Allgather on the world communicator. The same
// pattern a production MPI deployment would use for Table III's
// hyper-parameter search.
//
//   ./distributed_grid_search [--ranks 8] [--n 800]
#include <cstdio>
#include <vector>

#include "core/distributed_predict.hpp"
#include "core/distributed_solver.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "mpisim/spmd.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"ranks", "n"});
  const int ranks = static_cast<int>(flags.get_int("ranks", 8));
  const std::size_t n = flags.get_int("n", 800);

  const svmdata::Dataset train = svmdata::synthetic::two_rings(
      {.n = n, .d = 3, .inner_radius = 1.0, .gap = 1.2, .thickness = 0.25, .seed = 4});
  const svmdata::Dataset validate = svmdata::synthetic::two_rings(
      {.n = n / 2, .d = 3, .inner_radius = 1.0, .gap = 1.2, .thickness = 0.25, .seed = 4,
       .draw = 1});

  struct Cell {
    double C;
    double sigma_sq;
  };
  const std::vector<Cell> grid{{1.0, 0.5}, {10.0, 0.5}, {1.0, 64.0}, {10.0, 64.0}};

  struct CellResult {
    double accuracy;
    std::uint64_t iterations;
  };
  std::vector<CellResult> results(grid.size());

  svmmpi::run_spmd(ranks, [&](svmmpi::Comm& world) {
    // One sub-communicator per grid cell, round-robin over world ranks.
    const int cell_id = world.rank() % static_cast<int>(grid.size());
    svmmpi::Comm group = world.split(cell_id, world.rank());

    svmcore::SolverParams params;
    params.C = grid[cell_id].C;
    params.eps = 1e-3;
    params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(grid[cell_id].sigma_sq);
    svmcore::DistributedConfig config;
    config.params = params;
    config.heuristic = svmcore::Heuristic::best();

    svmcore::DistributedSolver solver(group, train, config);
    const svmcore::RankResult mine = solver.solve();

    // Group leader rebuilds the model from the gathered block alphas, then
    // everyone in the group evaluates it distributed.
    const auto blocks = group.allgatherv(std::span<const double>(mine.alpha));
    std::vector<double> alpha;
    for (const auto& block : blocks) alpha.insert(alpha.end(), block.begin(), block.end());
    const svmcore::SvmModel model =
        svmcore::build_model(train, alpha, mine.beta, params.kernel);
    const double accuracy = svmcore::distributed_accuracy(group, model, validate);

    if (group.rank() == 0)
      results[cell_id] = CellResult{accuracy, mine.stats.iterations};
    world.barrier();  // results[] fully written before the SPMD region ends
  });

  std::printf("distributed grid search: %d ranks over %zu cells, two-rings n=%zu\n\n", ranks,
              grid.size(), train.size());
  svmutil::TextTable table({"C", "sigma^2", "val accuracy %", "iterations"});
  std::size_t best = 0;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    if (results[c].accuracy > results[best].accuracy) best = c;
    table.add_row({svmutil::TextTable::num(grid[c].C, 1),
                   svmutil::TextTable::num(grid[c].sigma_sq, 1),
                   svmutil::TextTable::num(100.0 * results[c].accuracy, 2),
                   svmutil::TextTable::integer(results[c].iterations)});
  }
  table.print();
  std::printf("\nselected: C=%.1f sigma^2=%.1f\n", grid[best].C, grid[best].sigma_sq);
  return 0;
}
