// Quickstart: generate a two-class dataset, train the distributed shrinking
// SVM on a few simulated ranks, evaluate on a held-out draw, save the model.
//
//   ./quickstart [--n 2000] [--ranks 4] [--heuristic Multi5pc]
#include <cstdio>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"n", "ranks", "heuristic"});
  const std::size_t n = flags.get_int("n", 2000);
  const int ranks = static_cast<int>(flags.get_int("ranks", 4));
  const std::string heuristic = flags.get("heuristic", "Multi5pc");

  // 1. Data: two Gaussian classes with a little label noise.
  const svmdata::Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = n, .d = 16, .separation = 2.5, .label_noise = 0.03, .seed = 7});
  const svmdata::Dataset test = svmdata::synthetic::gaussian_blobs(
      {.n = n / 2, .d = 16, .separation = 2.5, .label_noise = 0.0, .seed = 7, .draw = 1});

  // 2. Solver parameters: Gaussian kernel, the paper's notation (C, sigma^2).
  svmcore::SolverParams params;
  params.C = 10.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(16.0);

  // 3. Train across simulated MPI ranks with adaptive shrinking.
  svmcore::TrainOptions options;
  options.num_ranks = ranks;
  options.heuristic = svmcore::Heuristic::parse(heuristic);
  const svmcore::TrainResult result = svmcore::train(train, params, options);

  // 4. Evaluate and report.
  std::printf("heuristic          : %s\n", options.heuristic.name().c_str());
  std::printf("ranks              : %d\n", ranks);
  std::printf("iterations         : %llu\n",
              static_cast<unsigned long long>(result.iterations));
  std::printf("support vectors    : %zu / %zu samples\n", result.num_support_vectors(),
              train.size());
  std::printf("samples shrunk     : %llu\n",
              static_cast<unsigned long long>(result.samples_shrunk));
  std::printf("gradient reconstr. : %llu\n",
              static_cast<unsigned long long>(result.reconstructions));
  std::printf("train accuracy     : %.2f%%\n", 100.0 * result.model.accuracy(train));
  std::printf("test accuracy      : %.2f%%\n", 100.0 * result.model.accuracy(test));
  std::printf("wall time          : %.3f s\n", result.wall_seconds);

  // 5. Persist the model for later prediction (see model_io example).
  result.model.save_file("quickstart.model");
  std::printf("model saved        : quickstart.model\n");
  return 0;
}
