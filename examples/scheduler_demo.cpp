// Multi-tenant training service in ~60 lines: two tenants share one rank
// pool — a batch tenant sweeping a small hyper-parameter grid and an
// interactive tenant lowering a 3-class problem to one-vs-one pair jobs at
// higher priority. A permanent rank death is injected mid-run: the affected
// job shrinks onto its surviving ranks and completes, every other job is
// untouched, and the freed ranks are reallocated to the queue.
//
//   ./scheduler_demo [--pool 6] [--n 240]
#include <cstdio>

#include "data/synthetic.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"pool", "n"});
  const int pool = static_cast<int>(flags.get_int("pool", 6));
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 240));

  // Tenant 1: batch grid search over (C, gamma).
  const auto grid_data = std::make_shared<const svmdata::Dataset>(
      svmdata::synthetic::gaussian_blobs({.n = n, .d = 8, .separation = 2.2, .seed = 7}));
  svmsched::JobDefaults batch;
  batch.tenant = "batch-grid";
  batch.ranks = 2;
  std::vector<svmsched::JobSpec> jobs = svmsched::grid_search_jobs(
      grid_data, {1.0, 8.0}, {0.25, 1.0}, svmcore::SolverParams{}, batch);

  // Tenant 2: interactive one-vs-one multiclass, higher priority.
  const svmdata::MultiClassData multi =
      svmdata::synthetic::multiclass_blobs({.n = n, .d = 8, .classes = 3, .seed = 8});
  svmsched::JobDefaults interactive;
  interactive.tenant = "interactive-ovo";
  interactive.ranks = 2;
  interactive.priority = 5;
  const auto ovo = svmsched::one_vs_one_jobs(multi, svmcore::SolverParams{}, interactive,
                                             static_cast<int>(jobs.size()));
  jobs.insert(jobs.end(), ovo.begin(), ovo.end());
  svmsched::assign_bursty_arrivals(jobs, {.seed = 3, .mean_gap_s = 0.003});

  svmsched::SchedulerOptions options;
  options.pool_ranks = pool;
  options.net_model.timeout_s = 10.0;
  options.fault_plan.die(1, 400);  // permanent death mid-way through a solve

  const svmsched::SchedulerReport report = svmsched::run_scheduler(jobs, options);

  svmutil::TextTable table({"job", "tenant", "state", "gang", "attempts", "shrinks", "SVs",
                            "iters", "wait s", "latency s"});
  for (const svmsched::JobRecord& rec : report.jobs)
    table.add_row({rec.spec.name, rec.spec.tenant, svmsched::to_string(rec.state),
                   svmutil::TextTable::integer(rec.gang_size),
                   svmutil::TextTable::integer(rec.attempts),
                   svmutil::TextTable::integer(rec.shrinks),
                   svmutil::TextTable::integer(static_cast<long long>(
                       rec.state == svmsched::JobState::completed ? rec.model.num_support_vectors()
                                                                  : 0)),
                   svmutil::TextTable::integer(static_cast<long long>(rec.iterations)),
                   svmutil::TextTable::num(rec.queue_wait_s, 3),
                   svmutil::TextTable::num(rec.latency_s, 3)});
  table.print();
  std::printf(
      "\nmakespan %.3fs; %d completed, %d lost; %d requeue(s), %d shrink(s), "
      "%zu pool rank(s) permanently lost\n",
      report.makespan_s, report.completed, report.lost, report.requeues, report.shrinks,
      report.pool_ranks_lost.size());
  return report.completed == static_cast<int>(report.jobs.size()) ? 0 : 1;
}
