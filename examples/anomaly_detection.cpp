// One-class SVM example: learn the support of "normal" traffic-like data,
// then flag novel points. Shows the nu-property (nu upper-bounds the
// training rejection rate and lower-bounds the SV fraction).
//
//   ./anomaly_detection [--n 400] [--nu 0.1]
#include <cstdio>

#include "baseline/one_class.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"n", "nu"});
  const std::size_t n = flags.get_int("n", 400);
  const double nu = flags.get_double("nu", 0.1);

  // "Normal" samples: a correlated 6-d cluster.
  svmutil::Rng rng(99);
  svmdata::CsrMatrix train;
  for (std::size_t i = 0; i < n; ++i) {
    const double base = rng.normal();
    std::vector<svmdata::Feature> row;
    for (int j = 0; j < 6; ++j)
      row.push_back(svmdata::Feature{j, 0.7 * base + 0.5 * rng.normal()});
    train.add_row(row);
  }

  svmbaseline::OneClassOptions options;
  options.nu = nu;
  options.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(4.0);
  const auto result = svmbaseline::solve_one_class(train, options);
  const auto model = result.to_model(train, options.kernel);

  std::size_t rejected = 0;
  std::size_t support_vectors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (model.decision_value(train.row(i)) < 0) ++rejected;
    if (result.alpha[i] > 0) ++support_vectors;
  }
  std::printf("one-class SVM, nu=%.2f on %zu normal samples\n", nu, n);
  std::printf("training rejection rate: %.1f%% (nu-bound: <= ~%.0f%%)\n",
              100.0 * rejected / static_cast<double>(n), 100.0 * nu);
  std::printf("support vector fraction: %.1f%% (nu-bound: >= ~%.0f%%)\n\n",
              100.0 * support_vectors / static_cast<double>(n), 100.0 * nu);

  // Score probes at increasing distance from the cluster.
  svmutil::TextTable table({"probe", "distance from center", "decision value", "verdict"});
  for (const double scale : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    std::vector<svmdata::Feature> probe;
    for (int j = 0; j < 6; ++j) probe.push_back(svmdata::Feature{j, scale});
    svmdata::CsrMatrix P;
    P.add_row(probe);
    const double f = model.decision_value(P.row(0));
    char name[16];
    std::snprintf(name, sizeof(name), "(%g,...)", scale);
    table.add_row({name, svmutil::TextTable::num(scale * 2.449, 2),
                   svmutil::TextTable::num(f, 4), f >= 0 ? "normal" : "ANOMALY"});
  }
  table.print();
  return 0;
}
