// Feature-scaling utility over libsvm-format files, after libsvm's
// `svm-scale`: fit scaling statistics on a training file, apply the SAME
// transform to any number of files (train/test consistency).
//
//   ./svm_scale fit-and-apply <train-in> <train-out> [<other-in> <other-out>]...
//               [--method maxabs|standard]
#include <cstdio>
#include <string>

#include "data/libsvm_io.hpp"
#include "data/scale.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  try {
    const svmutil::CliFlags flags(argc, argv, {"method"});
    const auto& files = flags.positional();
    if (files.size() < 3 || files[0] != "fit-and-apply" || files.size() % 2 == 0) {
      std::fprintf(stderr,
                   "usage: %s fit-and-apply <train-in> <train-out> [<in> <out>]... "
                   "[--method maxabs|standard]\n",
                   argv[0]);
      return 2;
    }
    const std::string method = flags.get("method", "maxabs");

    const svmdata::Dataset train = svmdata::read_libsvm_file(files[1]);
    std::printf("fit on %s: %zu samples, %zu features (%s scaling)\n", files[1].c_str(),
                train.size(), train.dim(), method.c_str());

    // Fit once on the training data, then transform every file pair with the
    // same statistics — the fit/transform discipline svm-scale enforces with
    // its -s/-r save/restore files.
    if (method == "maxabs") {
      const auto scaler = svmdata::MaxAbsScaler::fit(train);
      for (std::size_t pair = 1; pair + 1 < files.size(); pair += 2) {
        const svmdata::Dataset in = svmdata::read_libsvm_file(files[pair]);
        svmdata::write_libsvm_file(files[pair + 1], scaler.transform(in));
        std::printf("  %s -> %s (%zu rows)\n", files[pair].c_str(), files[pair + 1].c_str(),
                    in.size());
      }
    } else if (method == "standard") {
      const auto scaler = svmdata::StandardScaler::fit(train);
      for (std::size_t pair = 1; pair + 1 < files.size(); pair += 2) {
        const svmdata::Dataset in = svmdata::read_libsvm_file(files[pair]);
        svmdata::write_libsvm_file(files[pair + 1], scaler.transform(in));
        std::printf("  %s -> %s (%zu rows)\n", files[pair].c_str(), files[pair + 1].c_str(),
                    in.size());
      }
    } else {
      std::fprintf(stderr, "unknown --method %s (maxabs|standard)\n", method.c_str());
      return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
