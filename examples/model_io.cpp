// Model and dataset IO example: write a dataset in libsvm text format, read
// it back, train, save the model, reload it and verify that the reloaded
// model makes bitwise-identical predictions.
//
//   ./model_io [--dir /tmp]
#include <cstdio>

#include "core/trainer.hpp"
#include "data/libsvm_io.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"dir"});
  const std::string dir = flags.get("dir", ".");

  // Generate data and round-trip it through the libsvm text format — the
  // same format as every dataset on the libsvm page the paper draws from.
  const svmdata::Dataset generated = svmdata::synthetic::digits_like(
      {.n = 800, .d = 256, .noise = 0.25, .seed = 12});
  const std::string data_path = dir + "/digits.libsvm";
  svmdata::write_libsvm_file(data_path, generated);
  const svmdata::Dataset train = svmdata::read_libsvm_file(data_path);
  std::printf("dataset: %zu samples, %zu features, density %.1f%% -> %s\n", train.size(),
              train.dim(), 100.0 * train.X.density(), data_path.c_str());

  svmcore::SolverParams params;
  params.C = 10.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(25.0);
  svmcore::TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = svmcore::Heuristic::parse("Multi5pc");
  const svmcore::TrainResult result = svmcore::train(train, params, options);
  std::printf("trained: %zu support vectors, beta=%.6f\n", result.num_support_vectors(),
              result.beta);

  const std::string model_path = dir + "/digits.model";
  result.model.save_file(model_path);
  const svmcore::SvmModel loaded = svmcore::SvmModel::load_file(model_path);
  std::printf("model round trip: %s\n", model_path.c_str());

  // Bitwise agreement between the in-memory and reloaded models.
  const svmdata::Dataset probe = svmdata::synthetic::digits_like(
      {.n = 200, .d = 256, .noise = 0.25, .seed = 12, .draw = 1});
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < probe.size(); ++i)
    if (loaded.decision_value(probe.X.row(i)) != result.model.decision_value(probe.X.row(i)))
      ++mismatches;
  std::printf("decision-value mismatches after reload: %zu (expected 0)\n", mismatches);
  std::printf("held-out accuracy: %.2f%%\n", 100.0 * loaded.accuracy(probe));
  return mismatches == 0 ? 0 : 1;
}
