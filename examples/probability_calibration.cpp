// Probability outputs via Platt scaling (libsvm's -b 1): train, calibrate a
// sigmoid on a held-out draw, then report probability bands vs empirical
// accuracy — a quick reliability diagram in text form.
//
//   ./probability_calibration [--n 1500]
#include <cstdio>
#include <vector>

#include "core/probability.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"n"});
  const std::size_t n = flags.get_int("n", 1500);

  const auto train = svmdata::synthetic::gaussian_blobs(
      {.n = n, .d = 8, .separation = 1.6, .label_noise = 0.05, .seed = 33});
  const auto calibration = svmdata::synthetic::gaussian_blobs(
      {.n = n / 2, .d = 8, .separation = 1.6, .label_noise = 0.05, .seed = 33, .draw = 1});
  const auto test = svmdata::synthetic::gaussian_blobs(
      {.n = n, .d = 8, .separation = 1.6, .label_noise = 0.0, .seed = 33, .draw = 2});

  svmcore::SolverParams params;
  params.C = 8.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(8.0);
  svmcore::TrainOptions options;
  options.num_ranks = 2;
  options.heuristic = svmcore::Heuristic::parse("Multi5pc");
  const auto result = svmcore::train(train, params, options);

  const svmcore::PlattScaling platt = svmcore::fit_platt(result.model, calibration);
  std::printf("fitted sigmoid: P(+1|f) = 1 / (1 + exp(%.4f * f + %.4f))\n\n", platt.A, platt.B);

  // Reliability table: bucket test samples by predicted probability and
  // compare with the empirical positive rate per bucket.
  constexpr int kBuckets = 5;
  std::vector<std::size_t> count(kBuckets, 0);
  std::vector<std::size_t> positive(kBuckets, 0);
  std::vector<double> probability_sum(kBuckets, 0.0);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double p = platt.probability(result.model.decision_value(test.X.row(i)));
    int bucket = static_cast<int>(p * kBuckets);
    if (bucket == kBuckets) bucket = kBuckets - 1;
    ++count[bucket];
    probability_sum[bucket] += p;
    if (test.y[i] > 0) ++positive[bucket];
  }

  svmutil::TextTable table({"predicted P(+1)", "samples", "mean predicted", "empirical rate"});
  for (int b = 0; b < kBuckets; ++b) {
    char range[24];
    std::snprintf(range, sizeof(range), "[%.1f, %.1f)", b / static_cast<double>(kBuckets),
                  (b + 1) / static_cast<double>(kBuckets));
    table.add_row({range, svmutil::TextTable::integer(count[b]),
                   svmutil::TextTable::num(count[b] ? probability_sum[b] / count[b] : 0.0, 3),
                   svmutil::TextTable::num(
                       count[b] ? static_cast<double>(positive[b]) / count[b] : 0.0, 3)});
  }
  table.print();
  std::printf("\na calibrated model has 'mean predicted' ~ 'empirical rate' per row.\n");
  return 0;
}
