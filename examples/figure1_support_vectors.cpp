// The paper's Figure 1 as a terminal demo: a two-class 2-D dataset where
// only the few samples near the boundary become support vectors (encircled
// in the paper; upper-cased here). Prints an ASCII scatter plot with the
// hyperplane region and reports the SV fraction — the premise of shrinking.
//
//   ./figure1_support_vectors [--n 200]
#include <cstdio>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"n"});
  const std::size_t n = flags.get_int("n", 200);

  const svmdata::Dataset data = svmdata::synthetic::gaussian_blobs(
      {.n = n, .d = 2, .separation = 4.0, .seed = 42});

  svmcore::SolverParams params;
  params.C = 10.0;
  params.eps = 1e-4;
  params.kernel = svmkernel::KernelParams{svmkernel::KernelType::linear, 1.0, 0.0, 3};
  const auto result = svmcore::train(data, params, {});

  // Identify support vectors by matching alpha > 0 through the model's SV
  // list: re-derive per-sample SV flags from decision margins instead.
  std::vector<bool> is_sv(data.size(), false);
  std::size_t sv_count = 0;
  {
    // A sample is a support vector iff its margin y*f(x) <= 1 (+ slack).
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double margin = data.y[i] * result.model.decision_value(data.X.row(i));
      if (margin <= 1.0 + 1e-6) {
        is_sv[i] = true;
        ++sv_count;
      }
    }
  }

  // ASCII scatter: 64x24 grid over the bounding box.
  constexpr int kWidth = 64;
  constexpr int kHeight = 24;
  double min_x = 1e30;
  double max_x = -1e30;
  double min_y = 1e30;
  double max_y = -1e30;
  auto coord = [&](std::size_t i, int axis) {
    for (const svmdata::Feature& f : data.X.row(i))
      if (f.index == axis) return f.value;
    return 0.0;
  };
  for (std::size_t i = 0; i < data.size(); ++i) {
    min_x = std::min(min_x, coord(i, 0));
    max_x = std::max(max_x, coord(i, 0));
    min_y = std::min(min_y, coord(i, 1));
    max_y = std::max(max_y, coord(i, 1));
  }
  std::vector<std::string> canvas(kHeight, std::string(kWidth, ' '));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int col = static_cast<int>((coord(i, 0) - min_x) / (max_x - min_x) * (kWidth - 1));
    const int row =
        kHeight - 1 - static_cast<int>((coord(i, 1) - min_y) / (max_y - min_y) * (kHeight - 1));
    const char glyph = data.y[i] > 0 ? (is_sv[i] ? 'O' : 'o') : (is_sv[i] ? 'X' : 'x');
    // Support vectors overwrite non-SVs in shared cells.
    if (canvas[row][col] == ' ' || glyph == 'O' || glyph == 'X') canvas[row][col] = glyph;
  }

  std::printf("Figure 1 analogue: 'o'/'x' classes, upper-case = support vector\n\n");
  for (const std::string& line : canvas) std::printf("|%s|\n", line.c_str());
  std::printf("\nsupport vectors: %zu / %zu samples (%.1f%%)\n", sv_count, data.size(),
              100.0 * static_cast<double>(sv_count) / static_cast<double>(data.size()));
  std::printf("-> the vast majority of samples never define the boundary, which is\n"
              "   exactly what the paper's shrinking heuristics exploit.\n");
  return 0;
}
