# End-to-end CLI smoke test: generate data (model_io writes digits.libsvm),
# train with svm_cli, predict, and require a sane accuracy line.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(COMMAND ${MODEL_IO} --dir ${WORK_DIR} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "model_io failed: ${rc}")
endif()
execute_process(
  COMMAND ${SVM_CLI} train ${WORK_DIR}/digits.libsvm ${WORK_DIR}/cli.model
          --c 10 --sigma-sq 25 --ranks 2 --heuristic Multi5pc
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "svm_cli train failed: ${rc}")
endif()
execute_process(
  COMMAND ${SVM_CLI} predict ${WORK_DIR}/digits.libsvm ${WORK_DIR}/cli.model
          --out ${WORK_DIR}/predictions.txt
  OUTPUT_VARIABLE out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "svm_cli predict failed: ${rc}")
endif()
if(NOT out MATCHES "accuracy = (9[0-9]|100)")
  message(FATAL_ERROR "unexpected predict output: ${out}")
endif()
# Baseline path must work too.
execute_process(
  COMMAND ${SVM_CLI} train ${WORK_DIR}/digits.libsvm ${WORK_DIR}/cli_baseline.model
          --c 10 --sigma-sq 25 --baseline
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "svm_cli --baseline train failed: ${rc}")
endif()
