// Epsilon-SVR example: fit y = sin(x) from noisy samples, show the tube
// sparsity (only samples at/outside the epsilon tube become support
// vectors) and print a coarse text plot of the fit.
//
//   ./regression [--n 120] [--tube 0.1] [--noise 0.05]
#include <cmath>
#include <cstdio>

#include "baseline/svr.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"n", "tube", "noise"});
  const std::size_t n = flags.get_int("n", 120);
  const double tube = flags.get_double("tube", 0.1);
  const double noise = flags.get_double("noise", 0.05);

  svmutil::Rng rng(17);
  svmdata::CsrMatrix X;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 2.0 * M_PI * static_cast<double>(i) / static_cast<double>(n - 1);
    X.add_row(std::vector<svmdata::Feature>{{0, x}});
    y.push_back(std::sin(x) + rng.normal(0.0, noise));
  }

  svmbaseline::SvrOptions options;
  options.C = 10.0;
  options.epsilon_tube = tube;
  options.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(1.0);
  const svmbaseline::SvrResult result = svmbaseline::solve_svr(X, y, options);
  const auto model = result.to_model(X, options.kernel);

  std::size_t support_vectors = 0;
  double max_error = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.coef[i] != 0.0) ++support_vectors;
    max_error = std::max(max_error, std::abs(model.decision_value(X.row(i)) - std::sin(
                                                 X.row(i)[0].value)));
  }
  std::printf("epsilon-SVR on sin(x): n=%zu, tube=%.2f, noise=%.2f\n", n, tube, noise);
  std::printf("support vectors: %zu / %zu (tube sparsity)\n", support_vectors, n);
  std::printf("max |f(x) - sin(x)|: %.4f\n", max_error);
  std::printf("iterations: %llu\n\n", static_cast<unsigned long long>(result.iterations));

  // Text plot: '*' = fitted value, '.' = true sine, 41 columns in [-1.2, 1.2].
  for (std::size_t i = 0; i < n; i += n / 24) {
    const double x = X.row(i)[0].value;
    const double fitted = model.decision_value(X.row(i));
    char line[44];
    for (int c = 0; c < 43; ++c) line[c] = ' ';
    line[43] = '\0';
    auto column = [](double v) {
      int c = static_cast<int>((v + 1.2) / 2.4 * 42.0);
      return c < 0 ? 0 : (c > 42 ? 42 : c);
    };
    line[column(std::sin(x))] = '.';
    line[column(fitted)] = '*';
    std::printf("x=%5.2f |%s|\n", x, line);
  }
  std::printf("\n'*' fitted, '.' true sine\n");
  return 0;
}
