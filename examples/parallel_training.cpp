// SPMD embedding example: drive DistributedSolver directly on an explicit
// communicator (the way an MPI application would), compare several Table II
// heuristics, and inspect per-rank statistics and traffic — including how
// the paper's x_up/x_low broadcast and gradient-reconstruction ring show up
// in the communication counters.
//
//   ./parallel_training [--ranks 8] [--n 3000] [--trace-out trace.json]
//                       [--metrics-out metrics.json] [--log-level info]
//
// Because this example owns the SPMD region (no svmcore::train() wrapper),
// it also shows the manual observability wiring: enable the trace recorder
// around run_spmd, flush the Chrome trace afterwards, and assemble the run
// report from the per-rank RankResult::metrics registries.
#include <cstdio>
#include <vector>

#include "core/distributed_solver.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "mpisim/spmd.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, svmutil::with_obs_flags({"ranks", "n"}));
  const svmutil::ObsPaths obs = svmutil::apply_obs_flags(flags);
  const int ranks = static_cast<int>(flags.get_int("ranks", 8));
  const std::size_t n = flags.get_int("n", 3000);

  // All three heuristic runs land on one trace timeline, separated by the
  // per-run "solve" spans.
  if (!obs.trace_out.empty()) {
    svmobs::trace_reset();
    svmobs::trace_enable();
  }
  std::vector<svmobs::RunReport> reports;

  const svmdata::Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = n, .d = 12, .separation = 1.8, .label_noise = 0.05, .seed = 99});

  svmcore::SolverParams params;
  params.C = 8.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(8.0);

  svmutil::TextTable table({"heuristic", "iters", "shrunk", "recon", "kernel evals (max rank)",
                            "bytes sent", "wall s"});

  for (const char* name : {"Original", "Single50pc", "Multi5pc"}) {
    const svmcore::DistributedConfig config{params, svmcore::Heuristic::parse(name), false};

    // The SPMD region: every rank constructs its own solver bound to its
    // block of the dataset and they cooperate through the communicator.
    std::vector<svmcore::RankResult> results(ranks);
    svmmpi::TrafficStats traffic = svmmpi::run_spmd(ranks, [&](svmmpi::Comm& comm) {
      svmcore::DistributedSolver solver(comm, train, config);
      results[comm.rank()] = solver.solve();
    });

    std::uint64_t max_kernel = 0;
    std::uint64_t shrunk = 0;
    double wall = 0.0;
    for (const auto& r : results) {
      max_kernel = std::max(max_kernel, r.stats.kernel_evaluations);
      shrunk += r.stats.samples_shrunk;
      wall = std::max(wall, r.stats.solve_seconds);
    }
    if (!obs.metrics_out.empty()) {
      svmobs::RunReport report;
      report.name = name;
      report.info.emplace_back("ranks", std::to_string(ranks));
      report.info.emplace_back("n", std::to_string(n));
      for (const auto& r : results) report.ranks.push_back(r.metrics);
      report.finalize_aggregate();
      reports.push_back(std::move(report));
    }

    table.add_row({name, svmutil::TextTable::integer(results[0].stats.iterations),
                   svmutil::TextTable::integer(shrunk),
                   svmutil::TextTable::integer(results[0].stats.reconstructions),
                   svmutil::TextTable::integer(max_kernel),
                   svmutil::TextTable::integer(traffic.bytes_sent),
                   svmutil::TextTable::num(wall, 3)});
  }

  if (!obs.trace_out.empty()) {
    svmobs::trace_disable();
    svmobs::trace_write(obs.trace_out);
    std::printf("trace -> %s\n", obs.trace_out.c_str());
  }
  if (!obs.metrics_out.empty()) {
    svmobs::write_reports(obs.metrics_out, reports);
    std::printf("metrics -> %s\n", obs.metrics_out.c_str());
  }

  std::printf("Distributed SMO on %d simulated ranks, n=%zu\n\n", ranks, train.size());
  table.print();
  std::printf(
      "\nNote: 'Original' never shrinks (Algorithm 2); Single50pc shrinks late with one\n"
      "gradient reconstruction (Algorithm 4); Multi5pc shrinks early and reconstructs\n"
      "repeatedly (Algorithm 5) - the paper's best heuristic.\n");
  return 0;
}
