// Multiclass classification with the one-vs-one ensemble: k(k-1)/2 binary
// shrinking SVMs with majority-vote prediction (libsvm's strategy), on a
// synthetic k-class problem.
//
//   ./multiclass [--classes 4] [--n 800] [--ranks 2]
#include <cstdio>

#include "core/multiclass.hpp"
#include "data/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"classes", "n", "ranks"});
  const std::size_t classes = flags.get_int("classes", 4);
  const std::size_t n = flags.get_int("n", 800);
  const int ranks = static_cast<int>(flags.get_int("ranks", 2));

  const svmcore::MulticlassDataset train = svmdata::synthetic::multiclass_blobs(
      {.n = n, .d = 8, .classes = classes, .separation = 4.0, .seed = 21});
  const svmcore::MulticlassDataset test = svmdata::synthetic::multiclass_blobs(
      {.n = n / 2, .d = 8, .classes = classes, .separation = 4.0, .seed = 21, .draw = 1});

  svmcore::SolverParams params;
  params.C = 10.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(8.0);

  svmcore::MulticlassTrainOptions options;
  options.heuristic = svmcore::Heuristic::parse("Multi5pc");
  options.num_ranks = ranks;
  const svmcore::MulticlassModel model = svmcore::train_one_vs_one(train, params, options);

  std::printf("one-vs-one ensemble: %zu classes -> %zu binary machines\n", model.num_classes(),
              model.machines().size());
  std::printf("train accuracy: %.2f%%\n", 100.0 * model.accuracy(train));
  std::printf("test accuracy : %.2f%%\n", 100.0 * model.accuracy(test));

  // Per-class confusion counts on the test draw.
  const auto predicted = model.predict_all(test.X);
  svmutil::TextTable table({"class", "samples", "correct", "recall %"});
  for (const double cls : model.classes()) {
    std::size_t total = 0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      if (test.labels[i] != cls) continue;
      ++total;
      if (predicted[i] == cls) ++correct;
    }
    table.add_row({svmutil::TextTable::num(cls, 0), svmutil::TextTable::integer(total),
                   svmutil::TextTable::integer(correct),
                   svmutil::TextTable::num(total ? 100.0 * correct / total : 0.0, 1)});
  }
  std::printf("\n");
  table.print();

  model.save_file("multiclass.model");
  std::printf("\nmodel saved: multiclass.model\n");
  return 0;
}
