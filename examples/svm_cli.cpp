// Command-line front end over libsvm-format files, in the spirit of
// svm-train / svm-predict:
//
//   svm_cli train    data.libsvm model.out  [--c 10] [--sigma-sq 4] [--gamma G]
//                    [--eps 1e-3] [--ranks 4] [--heuristic Multi5pc]
//                    [--kernel rbf|linear|polynomial|sigmoid] [--baseline]
//                    [--w-pos W] [--w-neg W]
//   svm_cli predict  data.libsvm model.in   [--out predictions.txt]
//   svm_cli cv       data.libsvm            [--folds 10] [--c-grid 1,10,32]
//                    [--gamma-grid 0.015625,0.25,1]
//   svm_cli regress  data.libsvm model.out  [--c 10] [--tube 0.1] [--sigma-sq 4]
//   svm_cli outliers data.libsvm model.out  [--nu 0.1] [--sigma-sq 4]
//
// For `regress`, labels in the file are treated as real-valued targets; for
// `outliers`, labels are ignored. With --baseline, `train` uses the
// libsvm-style reference solver instead of the distributed shrinking solver.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "baseline/libsvm_like.hpp"
#include "baseline/one_class.hpp"
#include "baseline/svr.hpp"
#include "core/grid_search.hpp"
#include "core/trainer.hpp"
#include "data/libsvm_io.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

int usage(const char* program) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s train    <data> <model-out> [--c C] [--sigma-sq S] [--gamma G] [--eps E]\n"
      "              [--ranks P] [--heuristic H] [--kernel K] [--baseline]\n"
      "              [--solver smo|pbm]      (pbm = parallel block minimization:\n"
      "               one delta sync per outer round instead of per-iteration\n"
      "               broadcasts; [--pbm-blocks B] fixes the block count, default\n"
      "               = ranks)\n"
      "              [--w-pos W] [--w-neg W]\n"
      "              [--engine-backend reference|dense_scatter|cached|simd]\n"
      "              [--engine-flavor f64]   (training requires f64; --baseline\n"
      "               accepts f32/f16/i8 for its compressed Q-row cache)\n"
      "              [--log-level L] [--trace-out trace.json] [--metrics-out m.json]\n"
      "  %s predict  <data> <model-in> [--out predictions.txt]\n"
      "              [--engine-backend B] [--engine-flavor f64|f32|f16|i8]\n"
      "  %s cv       <data> [--folds K] [--c-grid a,b,..] [--gamma-grid a,b,..]\n"
      "  %s regress  <data> <model-out> [--c C] [--tube T] [--sigma-sq S]\n"
      "  %s outliers <data> <model-out> [--nu NU] [--sigma-sq S]\n",
      program, program, program, program, program);
  return 2;
}

svmkernel::KernelParams kernel_from(const svmutil::CliFlags& flags) {
  svmkernel::KernelParams kernel;
  kernel.type = svmkernel::kernel_type_from_string(flags.get("kernel", "rbf"));
  if (flags.has("gamma"))
    kernel.gamma = flags.get_double("gamma", 1.0);
  else
    kernel.gamma = 1.0 / flags.get_double("sigma-sq", 4.0);
  return kernel;
}

std::vector<double> parse_grid(const std::string& list) {
  std::vector<double> values;
  std::size_t at = 0;
  while (at < list.size()) {
    const std::size_t comma = list.find(',', at);
    values.push_back(std::stod(list.substr(at, comma - at)));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return values;
}

int run_train(const svmutil::CliFlags& flags) {
  const svmutil::ObsPaths obs = svmutil::apply_obs_flags(flags);
  const svmutil::EngineChoice engine = svmutil::apply_engine_flags(flags);
  const svmdata::Dataset train = svmdata::read_libsvm_file(flags.positional()[1]);
  const std::string model_path = flags.positional()[2];
  const svmkernel::KernelParams kernel = kernel_from(flags);
  const double C = flags.get_double("c", 10.0);
  const double eps = flags.get_double("eps", 1e-3);

  svmcore::SvmModel model;
  if (flags.get_bool("baseline")) {
    svmbaseline::BaselineOptions options;
    options.C = C;
    options.weight_positive = flags.get_double("w-pos", 1.0);
    options.weight_negative = flags.get_double("w-neg", 1.0);
    options.eps = eps;
    options.kernel = kernel;
    options.q_flavor = svmkernel::row_flavor_from_string(engine.flavor);
    const auto result = svmbaseline::solve_libsvm_like(train, options);
    std::printf("baseline: %llu iterations, cache hit rate %.1f%%\n",
                static_cast<unsigned long long>(result.iterations),
                100.0 * result.cache_hit_rate);
    model = svmcore::build_model(train, result.alpha, result.rho, kernel);
  } else {
    svmcore::SolverParams params;
    params.C = C;
    params.eps = eps;
    params.kernel = kernel;
    params.weight_positive = flags.get_double("w-pos", 1.0);
    params.weight_negative = flags.get_double("w-neg", 1.0);
    params.engine_backend = svmkernel::engine_backend_from_string(engine.backend);
    params.engine_flavor = svmkernel::row_flavor_from_string(engine.flavor);
    params.algo = svmcore::solver_algo_from_string(flags.get("solver", "smo"));
    params.pbm_blocks = static_cast<int>(flags.get_int("pbm-blocks", 0));
    svmcore::TrainOptions options;
    options.num_ranks = static_cast<int>(flags.get_int("ranks", 4));
    options.heuristic = svmcore::Heuristic::parse(flags.get("heuristic", "Multi5pc"));
    options.trace_path = obs.trace_out;
    options.metrics_path = obs.metrics_out;
    const auto result = svmcore::train(train, params, options);
    if (!obs.trace_out.empty()) std::printf("trace -> %s\n", obs.trace_out.c_str());
    if (!obs.metrics_out.empty()) std::printf("metrics -> %s\n", obs.metrics_out.c_str());
    if (params.algo == svmcore::SolverAlgo::pbm)
      std::printf("pbm (%s) on %d ranks: %llu outer rounds\n",
                  options.heuristic.name().c_str(), options.num_ranks,
                  static_cast<unsigned long long>(result.iterations));
    else
      std::printf("%s on %d ranks: %llu iterations, %llu samples shrunk, %llu reconstructions\n",
                  options.heuristic.name().c_str(), options.num_ranks,
                  static_cast<unsigned long long>(result.iterations),
                  static_cast<unsigned long long>(result.samples_shrunk),
                  static_cast<unsigned long long>(result.reconstructions));
    model = result.model;
  }

  model.save_file(model_path);
  std::printf("trained on %zu samples -> %zu support vectors -> %s\n", train.size(),
              model.num_support_vectors(), model_path.c_str());
  return 0;
}

int run_predict(const svmutil::CliFlags& flags) {
  const svmutil::EngineChoice choice = svmutil::apply_engine_flags(flags);
  const svmdata::Dataset data = svmdata::read_libsvm_file(flags.positional()[1]);
  const svmcore::SvmModel model = svmcore::SvmModel::load_file(flags.positional()[2]);

  // One engine for the whole prediction sweep; flavored engines (simd +
  // f32/f16/i8) trade exactness for compressed support-vector storage.
  svmkernel::KernelEngine engine =
      model.make_engine(svmkernel::engine_backend_from_string(choice.backend),
                        svmkernel::row_flavor_from_string(choice.flavor));
  std::vector<double> predictions(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    predictions[i] = model.decision_value(data.X.row(i), engine) >= 0.0 ? 1.0 : -1.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (predictions[i] == data.y[i]) ++correct;

  const std::string out_path = flags.get("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    for (const double p : predictions) out << (p > 0 ? "+1" : "-1") << '\n';
    std::printf("predictions written to %s\n", out_path.c_str());
  }
  std::printf("accuracy = %.4f%% (%zu/%zu)\n",
              100.0 * static_cast<double>(correct) / static_cast<double>(data.size()), correct,
              data.size());
  return 0;
}

int run_cv(const svmutil::CliFlags& flags) {
  const svmdata::Dataset data = svmdata::read_libsvm_file(flags.positional()[1]);
  svmcore::GridSearchOptions options;
  options.folds = static_cast<std::size_t>(flags.get_int("folds", 10));
  options.c_values = parse_grid(flags.get("c-grid", "1,10,32"));
  options.gamma_values = parse_grid(flags.get("gamma-grid", "0.015625,0.25,1"));
  const auto result = svmcore::grid_search(data, options);

  svmutil::TextTable table({"C", "gamma", "sigma^2", "mean val acc %", "mean #SV"});
  for (const auto& cell : result.cells)
    table.add_row({svmutil::TextTable::num(cell.C, 2), svmutil::TextTable::num(cell.gamma, 4),
                   svmutil::TextTable::num(1.0 / cell.gamma, 2),
                   svmutil::TextTable::num(100.0 * cell.mean_accuracy, 2),
                   svmutil::TextTable::num(cell.mean_support_vectors, 0)});
  table.print();
  std::printf("\nbest: C=%g gamma=%g (sigma^2=%g), %.2f%% validation accuracy\n",
              result.best.C, result.best.gamma, result.best_sigma_sq(),
              100.0 * result.best.mean_accuracy);
  return 0;
}

int run_regress(const svmutil::CliFlags& flags) {
  // Read targets as raw doubles: parse with the libsvm reader's row logic by
  // loading the file, then re-reading labels leniently.
  std::ifstream in(flags.positional()[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", flags.positional()[1].c_str());
    return 1;
  }
  svmdata::CsrMatrix X;
  std::vector<double> targets;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    double target = 0.0;
    fields >> target;
    targets.push_back(target);
    std::vector<svmdata::Feature> row;
    std::string token;
    while (fields >> token) {
      const auto colon = token.find(':');
      row.push_back(svmdata::Feature{std::stoi(token.substr(0, colon)) - 1,
                                     std::stod(token.substr(colon + 1))});
    }
    X.add_row(row);
  }

  svmbaseline::SvrOptions options;
  options.C = flags.get_double("c", 10.0);
  options.epsilon_tube = flags.get_double("tube", 0.1);
  options.kernel = kernel_from(flags);
  const auto result = svmbaseline::solve_svr(X, targets, options);
  const auto model = result.to_model(X, options.kernel);

  double mse = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const double err = model.decision_value(X.row(i)) - targets[i];
    mse += err * err;
  }
  std::printf("epsilon-SVR: %zu samples, %zu SVs, training MSE %.6f\n", targets.size(),
              model.num_support_vectors(), mse / static_cast<double>(targets.size()));
  model.save_file(flags.positional()[2]);
  std::printf("model -> %s\n", flags.positional()[2].c_str());
  return 0;
}

int run_outliers(const svmutil::CliFlags& flags) {
  const svmdata::Dataset data = svmdata::read_libsvm_file(flags.positional()[1]);
  svmbaseline::OneClassOptions options;
  options.nu = flags.get_double("nu", 0.1);
  options.kernel = kernel_from(flags);
  const auto result = svmbaseline::solve_one_class(data.X, options);
  const auto model = result.to_model(data.X, options.kernel);

  std::size_t rejected = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (model.decision_value(data.X.row(i)) < 0) ++rejected;
  std::printf("one-class SVM (nu=%.2f): %zu/%zu training samples flagged as outliers\n",
              options.nu, rejected, data.size());
  model.save_file(flags.positional()[2]);
  std::printf("model -> %s\n", flags.positional()[2].c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const svmutil::CliFlags flags(
        argc, argv,
        svmutil::with_engine_flags(svmutil::with_obs_flags(
            {"c", "sigma-sq", "gamma", "eps", "ranks", "heuristic", "kernel", "baseline!", "out",
             "solver", "pbm-blocks", "w-pos", "w-neg", "folds", "c-grid", "gamma-grid", "tube",
             "nu"})));
    if (flags.positional().size() < 2) return usage(argv[0]);
    const std::string& mode = flags.positional()[0];
    if (mode == "cv") return run_cv(flags);
    if (flags.positional().size() < 3) return usage(argv[0]);
    if (mode == "train") return run_train(flags);
    if (mode == "predict") return run_predict(flags);
    if (mode == "regress") return run_regress(flags);
    if (mode == "outliers") return run_outliers(flags);
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
