file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gradrecon.dir/bench_fig8_gradrecon.cpp.o"
  "CMakeFiles/bench_fig8_gradrecon.dir/bench_fig8_gradrecon.cpp.o.d"
  "bench_fig8_gradrecon"
  "bench_fig8_gradrecon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gradrecon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
