file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_realsim.dir/bench_fig7_realsim.cpp.o"
  "CMakeFiles/bench_fig7_realsim.dir/bench_fig7_realsim.cpp.o.d"
  "bench_fig7_realsim"
  "bench_fig7_realsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_realsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
