# Empty dependencies file for bench_fig7_realsim.
# This may be replaced when dependencies are built.
