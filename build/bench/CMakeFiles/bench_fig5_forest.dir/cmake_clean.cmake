file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_forest.dir/bench_fig5_forest.cpp.o"
  "CMakeFiles/bench_fig5_forest.dir/bench_fig5_forest.cpp.o.d"
  "bench_fig5_forest"
  "bench_fig5_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
