# Empty dependencies file for bench_ablation_subsequent_threshold.
# This may be replaced when dependencies are built.
