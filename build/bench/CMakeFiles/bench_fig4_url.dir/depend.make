# Empty dependencies file for bench_fig4_url.
# This may be replaced when dependencies are built.
