# Empty compiler generated dependencies file for bench_trace_active.
# This may be replaced when dependencies are built.
