file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_active.dir/bench_trace_active.cpp.o"
  "CMakeFiles/bench_trace_active.dir/bench_trace_active.cpp.o.d"
  "bench_trace_active"
  "bench_trace_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
