file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_higgs.dir/bench_fig3_higgs.cpp.o"
  "CMakeFiles/bench_fig3_higgs.dir/bench_fig3_higgs.cpp.o.d"
  "bench_fig3_higgs"
  "bench_fig3_higgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_higgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
