# Empty dependencies file for bench_table4_small.
# This may be replaced when dependencies are built.
