# Empty dependencies file for bench_fig6_mnist.
# This may be replaced when dependencies are built.
