file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_permanent_shrink.dir/bench_ablation_permanent_shrink.cpp.o"
  "CMakeFiles/bench_ablation_permanent_shrink.dir/bench_ablation_permanent_shrink.cpp.o.d"
  "bench_ablation_permanent_shrink"
  "bench_ablation_permanent_shrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_permanent_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
