# Empty dependencies file for bench_ablation_permanent_shrink.
# This may be replaced when dependencies are built.
