# Empty dependencies file for bench_comparison_cascade.
# This may be replaced when dependencies are built.
