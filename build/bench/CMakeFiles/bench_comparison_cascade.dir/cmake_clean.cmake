file(REMOVE_RECURSE
  "CMakeFiles/bench_comparison_cascade.dir/bench_comparison_cascade.cpp.o"
  "CMakeFiles/bench_comparison_cascade.dir/bench_comparison_cascade.cpp.o.d"
  "bench_comparison_cascade"
  "bench_comparison_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comparison_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
