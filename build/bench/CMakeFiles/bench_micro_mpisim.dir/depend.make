# Empty dependencies file for bench_micro_mpisim.
# This may be replaced when dependencies are built.
