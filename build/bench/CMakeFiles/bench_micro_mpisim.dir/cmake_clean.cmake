file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_mpisim.dir/bench_micro_mpisim.cpp.o"
  "CMakeFiles/bench_micro_mpisim.dir/bench_micro_mpisim.cpp.o.d"
  "bench_micro_mpisim"
  "bench_micro_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
