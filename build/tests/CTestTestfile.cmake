# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim_pt2pt[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_mpisim_stress[1]_include.cmake")
include("/root/repo/build/tests/test_data_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_data_io[1]_include.cmake")
include("/root/repo/build/tests/test_data_synthetic[1]_include.cmake")
include("/root/repo/build/tests/test_data_split[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_cache[1]_include.cmake")
include("/root/repo/build/tests/test_core_pairs[1]_include.cmake")
include("/root/repo/build/tests/test_core_sequential[1]_include.cmake")
include("/root/repo/build/tests/test_core_heuristics[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_core_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_core_shrinking[1]_include.cmake")
include("/root/repo/build/tests/test_core_reconstruction[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_core_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_core_multiclass[1]_include.cmake")
include("/root/repo/build/tests/test_core_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_core_probability[1]_include.cmake")
include("/root/repo/build/tests/test_svr[1]_include.cmake")
include("/root/repo/build/tests/test_one_class[1]_include.cmake")
include("/root/repo/build/tests/test_nu_svc[1]_include.cmake")
include("/root/repo/build/tests/test_nu_svr[1]_include.cmake")
include("/root/repo/build/tests/test_cascade[1]_include.cmake")
