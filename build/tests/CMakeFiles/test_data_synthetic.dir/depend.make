# Empty dependencies file for test_data_synthetic.
# This may be replaced when dependencies are built.
