file(REMOVE_RECURSE
  "CMakeFiles/test_data_synthetic.dir/test_data_synthetic.cpp.o"
  "CMakeFiles/test_data_synthetic.dir/test_data_synthetic.cpp.o.d"
  "test_data_synthetic"
  "test_data_synthetic.pdb"
  "test_data_synthetic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
