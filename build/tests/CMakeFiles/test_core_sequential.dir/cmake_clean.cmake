file(REMOVE_RECURSE
  "CMakeFiles/test_core_sequential.dir/test_core_sequential.cpp.o"
  "CMakeFiles/test_core_sequential.dir/test_core_sequential.cpp.o.d"
  "test_core_sequential"
  "test_core_sequential.pdb"
  "test_core_sequential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
