# Empty compiler generated dependencies file for test_core_sequential.
# This may be replaced when dependencies are built.
