file(REMOVE_RECURSE
  "CMakeFiles/test_nu_svc.dir/test_nu_svc.cpp.o"
  "CMakeFiles/test_nu_svc.dir/test_nu_svc.cpp.o.d"
  "test_nu_svc"
  "test_nu_svc.pdb"
  "test_nu_svc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nu_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
