# Empty dependencies file for test_nu_svc.
# This may be replaced when dependencies are built.
