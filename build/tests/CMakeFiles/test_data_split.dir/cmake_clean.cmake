file(REMOVE_RECURSE
  "CMakeFiles/test_data_split.dir/test_data_split.cpp.o"
  "CMakeFiles/test_data_split.dir/test_data_split.cpp.o.d"
  "test_data_split"
  "test_data_split.pdb"
  "test_data_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
