file(REMOVE_RECURSE
  "CMakeFiles/test_nu_svr.dir/test_nu_svr.cpp.o"
  "CMakeFiles/test_nu_svr.dir/test_nu_svr.cpp.o.d"
  "test_nu_svr"
  "test_nu_svr.pdb"
  "test_nu_svr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nu_svr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
