# Empty dependencies file for test_core_heuristics.
# This may be replaced when dependencies are built.
