file(REMOVE_RECURSE
  "CMakeFiles/test_core_heuristics.dir/test_core_heuristics.cpp.o"
  "CMakeFiles/test_core_heuristics.dir/test_core_heuristics.cpp.o.d"
  "test_core_heuristics"
  "test_core_heuristics.pdb"
  "test_core_heuristics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
