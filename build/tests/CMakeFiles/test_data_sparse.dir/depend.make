# Empty dependencies file for test_data_sparse.
# This may be replaced when dependencies are built.
