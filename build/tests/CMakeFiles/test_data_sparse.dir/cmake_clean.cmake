file(REMOVE_RECURSE
  "CMakeFiles/test_data_sparse.dir/test_data_sparse.cpp.o"
  "CMakeFiles/test_data_sparse.dir/test_data_sparse.cpp.o.d"
  "test_data_sparse"
  "test_data_sparse.pdb"
  "test_data_sparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
