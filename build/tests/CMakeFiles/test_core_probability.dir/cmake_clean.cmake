file(REMOVE_RECURSE
  "CMakeFiles/test_core_probability.dir/test_core_probability.cpp.o"
  "CMakeFiles/test_core_probability.dir/test_core_probability.cpp.o.d"
  "test_core_probability"
  "test_core_probability.pdb"
  "test_core_probability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
