# Empty dependencies file for test_core_probability.
# This may be replaced when dependencies are built.
