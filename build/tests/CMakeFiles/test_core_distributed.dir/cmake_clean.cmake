file(REMOVE_RECURSE
  "CMakeFiles/test_core_distributed.dir/test_core_distributed.cpp.o"
  "CMakeFiles/test_core_distributed.dir/test_core_distributed.cpp.o.d"
  "test_core_distributed"
  "test_core_distributed.pdb"
  "test_core_distributed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
