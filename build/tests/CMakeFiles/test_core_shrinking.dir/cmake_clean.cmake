file(REMOVE_RECURSE
  "CMakeFiles/test_core_shrinking.dir/test_core_shrinking.cpp.o"
  "CMakeFiles/test_core_shrinking.dir/test_core_shrinking.cpp.o.d"
  "test_core_shrinking"
  "test_core_shrinking.pdb"
  "test_core_shrinking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_shrinking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
