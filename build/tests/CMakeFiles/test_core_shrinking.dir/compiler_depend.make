# Empty compiler generated dependencies file for test_core_shrinking.
# This may be replaced when dependencies are built.
