file(REMOVE_RECURSE
  "CMakeFiles/test_core_reconstruction.dir/test_core_reconstruction.cpp.o"
  "CMakeFiles/test_core_reconstruction.dir/test_core_reconstruction.cpp.o.d"
  "test_core_reconstruction"
  "test_core_reconstruction.pdb"
  "test_core_reconstruction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
