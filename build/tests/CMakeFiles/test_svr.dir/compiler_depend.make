# Empty compiler generated dependencies file for test_svr.
# This may be replaced when dependencies are built.
