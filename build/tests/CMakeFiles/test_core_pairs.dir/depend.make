# Empty dependencies file for test_core_pairs.
# This may be replaced when dependencies are built.
