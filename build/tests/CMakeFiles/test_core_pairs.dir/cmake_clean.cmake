file(REMOVE_RECURSE
  "CMakeFiles/test_core_pairs.dir/test_core_pairs.cpp.o"
  "CMakeFiles/test_core_pairs.dir/test_core_pairs.cpp.o.d"
  "test_core_pairs"
  "test_core_pairs.pdb"
  "test_core_pairs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
