# Empty dependencies file for test_data_io.
# This may be replaced when dependencies are built.
