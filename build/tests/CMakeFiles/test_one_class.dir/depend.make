# Empty dependencies file for test_one_class.
# This may be replaced when dependencies are built.
