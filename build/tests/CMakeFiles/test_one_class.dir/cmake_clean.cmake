file(REMOVE_RECURSE
  "CMakeFiles/test_one_class.dir/test_one_class.cpp.o"
  "CMakeFiles/test_one_class.dir/test_one_class.cpp.o.d"
  "test_one_class"
  "test_one_class.pdb"
  "test_one_class[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_one_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
