# Empty compiler generated dependencies file for test_core_multiclass.
# This may be replaced when dependencies are built.
