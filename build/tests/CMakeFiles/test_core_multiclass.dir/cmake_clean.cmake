file(REMOVE_RECURSE
  "CMakeFiles/test_core_multiclass.dir/test_core_multiclass.cpp.o"
  "CMakeFiles/test_core_multiclass.dir/test_core_multiclass.cpp.o.d"
  "test_core_multiclass"
  "test_core_multiclass.pdb"
  "test_core_multiclass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
