file(REMOVE_RECURSE
  "CMakeFiles/model_io.dir/model_io.cpp.o"
  "CMakeFiles/model_io.dir/model_io.cpp.o.d"
  "model_io"
  "model_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
