# Empty dependencies file for model_io.
# This may be replaced when dependencies are built.
