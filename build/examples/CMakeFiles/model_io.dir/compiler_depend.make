# Empty compiler generated dependencies file for model_io.
# This may be replaced when dependencies are built.
