file(REMOVE_RECURSE
  "CMakeFiles/svm_scale.dir/svm_scale.cpp.o"
  "CMakeFiles/svm_scale.dir/svm_scale.cpp.o.d"
  "svm_scale"
  "svm_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svm_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
