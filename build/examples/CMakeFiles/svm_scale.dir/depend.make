# Empty dependencies file for svm_scale.
# This may be replaced when dependencies are built.
