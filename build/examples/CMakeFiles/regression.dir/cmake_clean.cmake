file(REMOVE_RECURSE
  "CMakeFiles/regression.dir/regression.cpp.o"
  "CMakeFiles/regression.dir/regression.cpp.o.d"
  "regression"
  "regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
