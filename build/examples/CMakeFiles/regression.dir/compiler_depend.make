# Empty compiler generated dependencies file for regression.
# This may be replaced when dependencies are built.
