# Empty compiler generated dependencies file for multiclass.
# This may be replaced when dependencies are built.
