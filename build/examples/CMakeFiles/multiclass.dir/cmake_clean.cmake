file(REMOVE_RECURSE
  "CMakeFiles/multiclass.dir/multiclass.cpp.o"
  "CMakeFiles/multiclass.dir/multiclass.cpp.o.d"
  "multiclass"
  "multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
