file(REMOVE_RECURSE
  "CMakeFiles/probability_calibration.dir/probability_calibration.cpp.o"
  "CMakeFiles/probability_calibration.dir/probability_calibration.cpp.o.d"
  "probability_calibration"
  "probability_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probability_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
