# Empty compiler generated dependencies file for probability_calibration.
# This may be replaced when dependencies are built.
