file(REMOVE_RECURSE
  "CMakeFiles/svm_cli.dir/svm_cli.cpp.o"
  "CMakeFiles/svm_cli.dir/svm_cli.cpp.o.d"
  "svm_cli"
  "svm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
