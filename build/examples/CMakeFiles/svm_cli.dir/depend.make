# Empty dependencies file for svm_cli.
# This may be replaced when dependencies are built.
