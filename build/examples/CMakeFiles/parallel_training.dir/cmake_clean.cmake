file(REMOVE_RECURSE
  "CMakeFiles/parallel_training.dir/parallel_training.cpp.o"
  "CMakeFiles/parallel_training.dir/parallel_training.cpp.o.d"
  "parallel_training"
  "parallel_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
