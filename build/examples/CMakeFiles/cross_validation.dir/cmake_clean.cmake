file(REMOVE_RECURSE
  "CMakeFiles/cross_validation.dir/cross_validation.cpp.o"
  "CMakeFiles/cross_validation.dir/cross_validation.cpp.o.d"
  "cross_validation"
  "cross_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
