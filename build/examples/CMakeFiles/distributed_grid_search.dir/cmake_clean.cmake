file(REMOVE_RECURSE
  "CMakeFiles/distributed_grid_search.dir/distributed_grid_search.cpp.o"
  "CMakeFiles/distributed_grid_search.dir/distributed_grid_search.cpp.o.d"
  "distributed_grid_search"
  "distributed_grid_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_grid_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
