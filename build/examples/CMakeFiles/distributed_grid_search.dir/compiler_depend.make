# Empty compiler generated dependencies file for distributed_grid_search.
# This may be replaced when dependencies are built.
