file(REMOVE_RECURSE
  "CMakeFiles/figure1_support_vectors.dir/figure1_support_vectors.cpp.o"
  "CMakeFiles/figure1_support_vectors.dir/figure1_support_vectors.cpp.o.d"
  "figure1_support_vectors"
  "figure1_support_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_support_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
