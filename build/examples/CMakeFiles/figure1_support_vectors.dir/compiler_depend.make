# Empty compiler generated dependencies file for figure1_support_vectors.
# This may be replaced when dependencies are built.
