# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "--n" "300" "--ranks" "2")
set_tests_properties([=[example_quickstart]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_parallel_training]=] "/root/repo/build/examples/parallel_training" "--n" "400" "--ranks" "4")
set_tests_properties([=[example_parallel_training]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_model_io]=] "/root/repo/build/examples/model_io" "--dir" "/root/repo/build/examples")
set_tests_properties([=[example_model_io]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cross_validation]=] "/root/repo/build/examples/cross_validation" "--n" "240" "--folds" "3")
set_tests_properties([=[example_cross_validation]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multiclass]=] "/root/repo/build/examples/multiclass" "--n" "300")
set_tests_properties([=[example_multiclass]=] PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_probability]=] "/root/repo/build/examples/probability_calibration" "--n" "400")
set_tests_properties([=[example_probability]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_regression]=] "/root/repo/build/examples/regression" "--n" "80")
set_tests_properties([=[example_regression]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_figure1]=] "/root/repo/build/examples/figure1_support_vectors" "--n" "150")
set_tests_properties([=[example_figure1]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_anomaly]=] "/root/repo/build/examples/anomaly_detection" "--n" "200")
set_tests_properties([=[example_anomaly]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed_grid]=] "/root/repo/build/examples/distributed_grid_search" "--ranks" "8" "--n" "300")
set_tests_properties([=[example_distributed_grid]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_chain]=] "/usr/bin/cmake" "-DSVM_CLI=/root/repo/build/examples/svm_cli" "-DMODEL_IO=/root/repo/build/examples/model_io" "-DWORK_DIR=/root/repo/build/examples/cli_chain" "-P" "/root/repo/examples/cli_chain_test.cmake")
set_tests_properties([=[example_cli_chain]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
