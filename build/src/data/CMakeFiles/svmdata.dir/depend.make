# Empty dependencies file for svmdata.
# This may be replaced when dependencies are built.
