
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/libsvm_io.cpp" "src/data/CMakeFiles/svmdata.dir/libsvm_io.cpp.o" "gcc" "src/data/CMakeFiles/svmdata.dir/libsvm_io.cpp.o.d"
  "/root/repo/src/data/scale.cpp" "src/data/CMakeFiles/svmdata.dir/scale.cpp.o" "gcc" "src/data/CMakeFiles/svmdata.dir/scale.cpp.o.d"
  "/root/repo/src/data/sparse.cpp" "src/data/CMakeFiles/svmdata.dir/sparse.cpp.o" "gcc" "src/data/CMakeFiles/svmdata.dir/sparse.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/data/CMakeFiles/svmdata.dir/split.cpp.o" "gcc" "src/data/CMakeFiles/svmdata.dir/split.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/svmdata.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/svmdata.dir/synthetic.cpp.o.d"
  "/root/repo/src/data/zoo.cpp" "src/data/CMakeFiles/svmdata.dir/zoo.cpp.o" "gcc" "src/data/CMakeFiles/svmdata.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/svmutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
