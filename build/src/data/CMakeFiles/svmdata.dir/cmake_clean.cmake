file(REMOVE_RECURSE
  "CMakeFiles/svmdata.dir/libsvm_io.cpp.o"
  "CMakeFiles/svmdata.dir/libsvm_io.cpp.o.d"
  "CMakeFiles/svmdata.dir/scale.cpp.o"
  "CMakeFiles/svmdata.dir/scale.cpp.o.d"
  "CMakeFiles/svmdata.dir/sparse.cpp.o"
  "CMakeFiles/svmdata.dir/sparse.cpp.o.d"
  "CMakeFiles/svmdata.dir/split.cpp.o"
  "CMakeFiles/svmdata.dir/split.cpp.o.d"
  "CMakeFiles/svmdata.dir/synthetic.cpp.o"
  "CMakeFiles/svmdata.dir/synthetic.cpp.o.d"
  "CMakeFiles/svmdata.dir/zoo.cpp.o"
  "CMakeFiles/svmdata.dir/zoo.cpp.o.d"
  "libsvmdata.a"
  "libsvmdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svmdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
