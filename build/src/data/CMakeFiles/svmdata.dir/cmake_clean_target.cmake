file(REMOVE_RECURSE
  "libsvmdata.a"
)
