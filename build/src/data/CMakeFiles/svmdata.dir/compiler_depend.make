# Empty compiler generated dependencies file for svmdata.
# This may be replaced when dependencies are built.
