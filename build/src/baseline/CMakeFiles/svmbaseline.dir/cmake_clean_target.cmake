file(REMOVE_RECURSE
  "libsvmbaseline.a"
)
