# Empty compiler generated dependencies file for svmbaseline.
# This may be replaced when dependencies are built.
