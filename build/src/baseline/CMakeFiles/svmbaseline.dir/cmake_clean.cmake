file(REMOVE_RECURSE
  "CMakeFiles/svmbaseline.dir/generic_smo.cpp.o"
  "CMakeFiles/svmbaseline.dir/generic_smo.cpp.o.d"
  "CMakeFiles/svmbaseline.dir/libsvm_like.cpp.o"
  "CMakeFiles/svmbaseline.dir/libsvm_like.cpp.o.d"
  "CMakeFiles/svmbaseline.dir/nu_svc.cpp.o"
  "CMakeFiles/svmbaseline.dir/nu_svc.cpp.o.d"
  "CMakeFiles/svmbaseline.dir/nu_svr.cpp.o"
  "CMakeFiles/svmbaseline.dir/nu_svr.cpp.o.d"
  "CMakeFiles/svmbaseline.dir/one_class.cpp.o"
  "CMakeFiles/svmbaseline.dir/one_class.cpp.o.d"
  "CMakeFiles/svmbaseline.dir/svr.cpp.o"
  "CMakeFiles/svmbaseline.dir/svr.cpp.o.d"
  "libsvmbaseline.a"
  "libsvmbaseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svmbaseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
