
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/generic_smo.cpp" "src/baseline/CMakeFiles/svmbaseline.dir/generic_smo.cpp.o" "gcc" "src/baseline/CMakeFiles/svmbaseline.dir/generic_smo.cpp.o.d"
  "/root/repo/src/baseline/libsvm_like.cpp" "src/baseline/CMakeFiles/svmbaseline.dir/libsvm_like.cpp.o" "gcc" "src/baseline/CMakeFiles/svmbaseline.dir/libsvm_like.cpp.o.d"
  "/root/repo/src/baseline/nu_svc.cpp" "src/baseline/CMakeFiles/svmbaseline.dir/nu_svc.cpp.o" "gcc" "src/baseline/CMakeFiles/svmbaseline.dir/nu_svc.cpp.o.d"
  "/root/repo/src/baseline/nu_svr.cpp" "src/baseline/CMakeFiles/svmbaseline.dir/nu_svr.cpp.o" "gcc" "src/baseline/CMakeFiles/svmbaseline.dir/nu_svr.cpp.o.d"
  "/root/repo/src/baseline/one_class.cpp" "src/baseline/CMakeFiles/svmbaseline.dir/one_class.cpp.o" "gcc" "src/baseline/CMakeFiles/svmbaseline.dir/one_class.cpp.o.d"
  "/root/repo/src/baseline/svr.cpp" "src/baseline/CMakeFiles/svmbaseline.dir/svr.cpp.o" "gcc" "src/baseline/CMakeFiles/svmbaseline.dir/svr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/svmcore.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/svmkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/svmdata.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/svmmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svmutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
