file(REMOVE_RECURSE
  "CMakeFiles/svmutil.dir/cli.cpp.o"
  "CMakeFiles/svmutil.dir/cli.cpp.o.d"
  "CMakeFiles/svmutil.dir/logging.cpp.o"
  "CMakeFiles/svmutil.dir/logging.cpp.o.d"
  "CMakeFiles/svmutil.dir/rng.cpp.o"
  "CMakeFiles/svmutil.dir/rng.cpp.o.d"
  "CMakeFiles/svmutil.dir/stats.cpp.o"
  "CMakeFiles/svmutil.dir/stats.cpp.o.d"
  "CMakeFiles/svmutil.dir/table.cpp.o"
  "CMakeFiles/svmutil.dir/table.cpp.o.d"
  "CMakeFiles/svmutil.dir/timer.cpp.o"
  "CMakeFiles/svmutil.dir/timer.cpp.o.d"
  "libsvmutil.a"
  "libsvmutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svmutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
