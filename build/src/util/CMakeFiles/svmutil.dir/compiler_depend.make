# Empty compiler generated dependencies file for svmutil.
# This may be replaced when dependencies are built.
