# Empty dependencies file for svmutil.
# This may be replaced when dependencies are built.
