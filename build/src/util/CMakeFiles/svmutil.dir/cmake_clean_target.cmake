file(REMOVE_RECURSE
  "libsvmutil.a"
)
