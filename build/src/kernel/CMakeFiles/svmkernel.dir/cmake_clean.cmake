file(REMOVE_RECURSE
  "CMakeFiles/svmkernel.dir/kernel.cpp.o"
  "CMakeFiles/svmkernel.dir/kernel.cpp.o.d"
  "CMakeFiles/svmkernel.dir/kernel_cache.cpp.o"
  "CMakeFiles/svmkernel.dir/kernel_cache.cpp.o.d"
  "CMakeFiles/svmkernel.dir/row_eval.cpp.o"
  "CMakeFiles/svmkernel.dir/row_eval.cpp.o.d"
  "libsvmkernel.a"
  "libsvmkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svmkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
