file(REMOVE_RECURSE
  "libsvmkernel.a"
)
