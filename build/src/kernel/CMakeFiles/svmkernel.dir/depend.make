# Empty dependencies file for svmkernel.
# This may be replaced when dependencies are built.
