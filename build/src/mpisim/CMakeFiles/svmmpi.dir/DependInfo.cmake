
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpisim/collective.cpp" "src/mpisim/CMakeFiles/svmmpi.dir/collective.cpp.o" "gcc" "src/mpisim/CMakeFiles/svmmpi.dir/collective.cpp.o.d"
  "/root/repo/src/mpisim/comm.cpp" "src/mpisim/CMakeFiles/svmmpi.dir/comm.cpp.o" "gcc" "src/mpisim/CMakeFiles/svmmpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpisim/mailbox.cpp" "src/mpisim/CMakeFiles/svmmpi.dir/mailbox.cpp.o" "gcc" "src/mpisim/CMakeFiles/svmmpi.dir/mailbox.cpp.o.d"
  "/root/repo/src/mpisim/spmd.cpp" "src/mpisim/CMakeFiles/svmmpi.dir/spmd.cpp.o" "gcc" "src/mpisim/CMakeFiles/svmmpi.dir/spmd.cpp.o.d"
  "/root/repo/src/mpisim/world.cpp" "src/mpisim/CMakeFiles/svmmpi.dir/world.cpp.o" "gcc" "src/mpisim/CMakeFiles/svmmpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/svmutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
