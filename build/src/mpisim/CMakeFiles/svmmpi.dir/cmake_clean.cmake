file(REMOVE_RECURSE
  "CMakeFiles/svmmpi.dir/collective.cpp.o"
  "CMakeFiles/svmmpi.dir/collective.cpp.o.d"
  "CMakeFiles/svmmpi.dir/comm.cpp.o"
  "CMakeFiles/svmmpi.dir/comm.cpp.o.d"
  "CMakeFiles/svmmpi.dir/mailbox.cpp.o"
  "CMakeFiles/svmmpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/svmmpi.dir/spmd.cpp.o"
  "CMakeFiles/svmmpi.dir/spmd.cpp.o.d"
  "CMakeFiles/svmmpi.dir/world.cpp.o"
  "CMakeFiles/svmmpi.dir/world.cpp.o.d"
  "libsvmmpi.a"
  "libsvmmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svmmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
