# Empty compiler generated dependencies file for svmmpi.
# This may be replaced when dependencies are built.
