file(REMOVE_RECURSE
  "libsvmmpi.a"
)
