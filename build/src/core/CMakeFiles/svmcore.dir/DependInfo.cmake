
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distributed_predict.cpp" "src/core/CMakeFiles/svmcore.dir/distributed_predict.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/distributed_predict.cpp.o.d"
  "/root/repo/src/core/distributed_solver.cpp" "src/core/CMakeFiles/svmcore.dir/distributed_solver.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/distributed_solver.cpp.o.d"
  "/root/repo/src/core/gradient_reconstruction.cpp" "src/core/CMakeFiles/svmcore.dir/gradient_reconstruction.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/gradient_reconstruction.cpp.o.d"
  "/root/repo/src/core/grid_search.cpp" "src/core/CMakeFiles/svmcore.dir/grid_search.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/grid_search.cpp.o.d"
  "/root/repo/src/core/heuristics.cpp" "src/core/CMakeFiles/svmcore.dir/heuristics.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/heuristics.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/svmcore.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/metrics.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/svmcore.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/model.cpp.o.d"
  "/root/repo/src/core/multiclass.cpp" "src/core/CMakeFiles/svmcore.dir/multiclass.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/multiclass.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/svmcore.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/objective.cpp.o.d"
  "/root/repo/src/core/probability.cpp" "src/core/CMakeFiles/svmcore.dir/probability.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/probability.cpp.o.d"
  "/root/repo/src/core/sample_block.cpp" "src/core/CMakeFiles/svmcore.dir/sample_block.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/sample_block.cpp.o.d"
  "/root/repo/src/core/sequential_smo.cpp" "src/core/CMakeFiles/svmcore.dir/sequential_smo.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/sequential_smo.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/svmcore.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/svmcore.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/svmdata.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/svmkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/svmmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svmutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
