file(REMOVE_RECURSE
  "libsvmcore.a"
)
