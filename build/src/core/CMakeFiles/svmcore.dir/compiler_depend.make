# Empty compiler generated dependencies file for svmcore.
# This may be replaced when dependencies are built.
