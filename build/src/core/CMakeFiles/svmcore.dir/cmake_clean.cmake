file(REMOVE_RECURSE
  "CMakeFiles/svmcore.dir/distributed_predict.cpp.o"
  "CMakeFiles/svmcore.dir/distributed_predict.cpp.o.d"
  "CMakeFiles/svmcore.dir/distributed_solver.cpp.o"
  "CMakeFiles/svmcore.dir/distributed_solver.cpp.o.d"
  "CMakeFiles/svmcore.dir/gradient_reconstruction.cpp.o"
  "CMakeFiles/svmcore.dir/gradient_reconstruction.cpp.o.d"
  "CMakeFiles/svmcore.dir/grid_search.cpp.o"
  "CMakeFiles/svmcore.dir/grid_search.cpp.o.d"
  "CMakeFiles/svmcore.dir/heuristics.cpp.o"
  "CMakeFiles/svmcore.dir/heuristics.cpp.o.d"
  "CMakeFiles/svmcore.dir/metrics.cpp.o"
  "CMakeFiles/svmcore.dir/metrics.cpp.o.d"
  "CMakeFiles/svmcore.dir/model.cpp.o"
  "CMakeFiles/svmcore.dir/model.cpp.o.d"
  "CMakeFiles/svmcore.dir/multiclass.cpp.o"
  "CMakeFiles/svmcore.dir/multiclass.cpp.o.d"
  "CMakeFiles/svmcore.dir/objective.cpp.o"
  "CMakeFiles/svmcore.dir/objective.cpp.o.d"
  "CMakeFiles/svmcore.dir/probability.cpp.o"
  "CMakeFiles/svmcore.dir/probability.cpp.o.d"
  "CMakeFiles/svmcore.dir/sample_block.cpp.o"
  "CMakeFiles/svmcore.dir/sample_block.cpp.o.d"
  "CMakeFiles/svmcore.dir/sequential_smo.cpp.o"
  "CMakeFiles/svmcore.dir/sequential_smo.cpp.o.d"
  "CMakeFiles/svmcore.dir/trainer.cpp.o"
  "CMakeFiles/svmcore.dir/trainer.cpp.o.d"
  "libsvmcore.a"
  "libsvmcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svmcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
