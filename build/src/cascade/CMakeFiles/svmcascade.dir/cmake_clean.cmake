file(REMOVE_RECURSE
  "CMakeFiles/svmcascade.dir/cascade_svm.cpp.o"
  "CMakeFiles/svmcascade.dir/cascade_svm.cpp.o.d"
  "libsvmcascade.a"
  "libsvmcascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svmcascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
