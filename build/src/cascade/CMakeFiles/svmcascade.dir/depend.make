# Empty dependencies file for svmcascade.
# This may be replaced when dependencies are built.
