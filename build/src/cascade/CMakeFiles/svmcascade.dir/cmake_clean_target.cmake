file(REMOVE_RECURSE
  "libsvmcascade.a"
)
