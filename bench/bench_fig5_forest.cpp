// Figure 5: Forest covertype scaling. Paper: 581K samples, up to 1024
// processes; Shrink(Best) achieves 19.8x over libsvm-enhanced; 2.07M
// iterations; shrinking continues almost to convergence; false positives
// recovered quickly after the first 20*eps reconstruction.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  return svmbench::run_figure_bench(
      "Figure 5", "forest", /*scale_hint=*/0.3, {1, 2, 4, 8},
      "19.8x vs libsvm-enhanced at 1024 procs; gradual shrinking almost to convergence; "
      "Multi5pc best / Single50pc worst",
      args);
}
