// Ablation for §III-A.2 ("Kernel Cache"): the paper argues a kernel cache's
// hit probability falls as the dataset grows for a fixed budget, which is
// one reason the proposed algorithm avoids a cache entirely. This bench
// sweeps dataset size x cache budget on the libsvm-style baseline and
// reports hit rate, kernel evaluations and wall time.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner("Ablation - kernel cache (SIII-A.2)",
                         "for fixed cache size, hit probability decreases with dataset size; "
                         "the proposed solver therefore avoids the cache");

  const auto& entry = svmdata::zoo_entry("forest");
  const std::size_t sizes[] = {500, 1000, 2000};
  const std::size_t budgets_mb[] = {1, 8, 64};

  svmutil::TextTable table(
      {"n", "cache MB", "hit rate %", "kernel evals (M)", "iters", "wall s"});
  for (const std::size_t n : sizes) {
    const double scale =
        static_cast<double>(n) / static_cast<double>(entry.default_train_size) * args.scale;
    const auto train = svmdata::make_train(entry, scale);
    for (const std::size_t mb : budgets_mb) {
      svmbaseline::BaselineOptions options;
      options.C = entry.C;
      options.eps = args.eps;
      options.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
      options.cache_mb = mb;
      const auto result = svmbaseline::solve_libsvm_like(train, options);
      table.add_row({svmutil::TextTable::integer(train.size()),
                     svmutil::TextTable::integer(mb),
                     svmutil::TextTable::num(100.0 * result.cache_hit_rate, 1),
                     svmutil::TextTable::num(
                         static_cast<double>(result.kernel_evaluations) / 1e6, 2),
                     svmutil::TextTable::integer(result.iterations),
                     svmutil::TextTable::num(result.solve_seconds, 2)});
    }
  }
  table.print();
  std::printf("\nshape: within a budget column, the hit rate falls as n grows (the paper's\n"
              "argument for the cache-free design of the proposed solver).\n");
  return 0;
}
