// Table IV: relative speedup to libsvm-SEQUENTIAL on the smaller datasets
// (Adult-9, RCV1, USPS, Mushrooms, w7a), for Default / Shrinking(Worst) /
// Shrinking(Best) at the paper's per-dataset process counts. Paper values:
//   Adult-9: 1.5 / 3.1 / 3.2 (16 procs),  RCV1: 27 / 31 / 39 (64),
//   USPS: 0.5 / 0.7 / 1.3 (4),  Mushrooms: 0.4 / 1.09 / 1.9 (4),
//   w7a: 1.7 / 2.4 / 3.1 (16).
// Wall-clock speedup from parallelism cannot appear on this 1-core box, so
// the table reports modeled-time speedups (work/lambda + alpha-beta network)
// alongside raw wall time; shapes to match: Best >= Worst >= Default, and
// the tiny datasets (USPS, Mushrooms) showing Default < 1 (parallel overhead
// exceeding the win on a few thousand samples).
#include "bench_common.hpp"

namespace {

struct PaperRow {
  const char* dataset;
  int processes;
  double paper_default, paper_worst, paper_best;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner("Table IV - small-dataset speedups vs libsvm-sequential",
                         "Default / Shrink(Worst) / Shrink(Best) relative to single-threaded "
                         "libsvm at the paper's process counts");

  const PaperRow rows[] = {{"a9a", 16, 1.5, 3.1, 3.2},
                           {"rcv1", 64, 27.0, 31.0, 39.0},
                           {"usps", 4, 0.5, 0.7, 1.3},
                           {"mushrooms", 4, 0.4, 1.09, 1.9},
                           {"w7a", 16, 1.7, 2.4, 3.1}};

  svmutil::TextTable table({"dataset", "p", "Default", "Shrink(Worst)", "Shrink(Best)",
                            "paper D/W/B", "baseline s"});
  for (const PaperRow& row : rows) {
    const auto& entry = svmdata::zoo_entry(row.dataset);
    const auto train = svmdata::make_train(entry, 0.5 * args.scale);
    const auto params = svmbench::params_for(entry, args.eps);
    // Cap simulated ranks at 8: beyond that, thread time-sharing noise on
    // one core swamps the signal. The modeled time still uses the real p.
    const int p = std::min(row.processes, 8);

    // libsvm-sequential reference: baseline solver, single thread, no OpenMP.
    svmbaseline::BaselineOptions sequential;
    sequential.C = entry.C;
    sequential.eps = args.eps;
    sequential.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
    sequential.use_openmp = false;
    const auto baseline = svmbaseline::solve_libsvm_like(train, sequential);

    auto run = [&](const char* heuristic) {
      svmcore::TrainOptions options;
      options.num_ranks = p;
      options.heuristic = svmcore::Heuristic::parse(heuristic);
      const auto result = svmcore::train(train, params, options);
      return baseline.solve_seconds / std::max(result.modeled_seconds, 1e-9);
    };

    char paper[48];
    std::snprintf(paper, sizeof(paper), "%.1f / %.2f / %.1f (p=%d)", row.paper_default,
                  row.paper_worst, row.paper_best, row.processes);
    table.add_row({row.dataset, svmutil::TextTable::integer(p),
                   svmutil::TextTable::num(run("Original"), 2),
                   svmutil::TextTable::num(run("Single50pc"), 2),
                   svmutil::TextTable::num(run("Multi5pc"), 2), paper,
                   svmutil::TextTable::num(baseline.solve_seconds, 2)});
  }
  table.print();
  std::printf("\nmeasured columns are modeled-time speedups vs the single-threaded baseline\n"
              "(1-core container; see DESIGN.md); the ordering Best >= Worst >= Default is\n"
              "the paper's shape.\n");
  return 0;
}
