// Table III: dataset characteristics and hyper-parameter settings. Prints
// the paper's sizes alongside the container-scale synthetic equivalents and
// the realized density/dimensionality of each generated workload.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner("Table III - dataset characteristics and hyper-parameters",
                         "training/testing sizes with C and sigma^2 chosen by ten-fold cross "
                         "validation (or literature for the large datasets)");

  svmutil::TextTable table({"name", "paper train", "paper test", "container train",
                            "container test", "d", "density %", "C", "sigma^2"});
  for (const auto& entry : svmdata::zoo()) {
    // Generate at reduced scale so this stays fast; density/dim don't change.
    const auto sample = svmdata::make_train(entry, 0.2 * args.scale);
    table.add_row({entry.name, svmutil::TextTable::integer(entry.paper_train_size),
                   entry.paper_test_size ? svmutil::TextTable::integer(entry.paper_test_size)
                                         : std::string("N/A"),
                   svmutil::TextTable::integer(
                       static_cast<long long>(entry.default_train_size * args.scale)),
                   entry.default_test_size
                       ? svmutil::TextTable::integer(
                             static_cast<long long>(entry.default_test_size * args.scale))
                       : std::string("N/A"),
                   svmutil::TextTable::integer(sample.dim()),
                   svmutil::TextTable::num(100.0 * sample.X.density(), 3),
                   svmutil::TextTable::num(entry.C, 0), svmutil::TextTable::num(entry.sigma_sq, 0)});
  }
  table.print();
  return 0;
}
