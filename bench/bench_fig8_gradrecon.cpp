// Figure 8: fraction of overall time spent in gradient reconstruction with
// the best heuristic (Multi5pc), for the four large datasets, as a function
// of process count. Paper: the ratio DECREASES with scale (it stays under
// ~10% at 4096 processes for HIGGS) because per-rank reconstruction work is
// Theta(N/p)*A while the iterative phase loses efficiency more slowly.
//
// Second section: the pipelined double-buffered reconstruction ring vs the
// serial (blocking exchange after compute) ring, at p in {4, 8}. Reported
// per (dataset, p): reconstruction wall seconds (min over repeats), modeled
// network seconds of the ring (serial = gross alpha-beta cost, pipelined =
// gross minus the overlap credit, i.e. the max(compute, comm) charging),
// the overlap ratio, query scatters per ring step, and a bitwise model
// parity verdict. Results also land in BENCH_gradrecon.json; with --assert
// the run exits nonzero unless the pipelined ring is no slower in wall
// time, strictly cheaper in modeled network time, and bit-identical.
//
// Usage: bench_fig8_gradrecon [--scale S] [--ranks a,b,..] [--quick]
//                             [--repeats R] [--assert]
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

struct ModeStats {
  double recon_wall_s = 0.0;   ///< max-over-ranks wall in Algorithm 3, min over repeats
  double net_modeled_s = 0.0;  ///< modeled ring-exchange seconds after crediting
  std::uint64_t scatter_builds = 0;  ///< recon query scatters, summed over ranks
};

struct PipelineReport {
  std::string dataset;
  int ranks = 0;
  ModeStats serial;
  ModeStats pipelined;
  double wall_speedup = 0.0;
  double net_speedup = 0.0;
  double overlap_ratio = 0.0;       ///< credited / gross modeled ring seconds
  double scatters_per_step = 0.0;   ///< pipelined scatter builds per rank-step
  std::uint64_t scatter_builds_saved = 0;
  std::uint64_t ring_steps = 0;
  std::uint64_t overlapped_steps = 0;
  std::uint64_t reconstructions = 0;
  bool parity_ok = true;
};

bool models_bit_identical(const svmcore::TrainResult& a, const svmcore::TrainResult& b) {
  if (a.iterations != b.iterations || a.beta != b.beta || a.converged != b.converged)
    return false;
  if (a.model.num_support_vectors() != b.model.num_support_vectors()) return false;
  for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
    if (a.model.coefficients()[j] != b.model.coefficients()[j]) return false;
  return true;
}

PipelineReport compare_modes(const svmdata::Dataset& train, const svmcore::SolverParams& params,
                             const std::string& dataset, const char* heuristic, int p,
                             int repeats) {
  PipelineReport report;
  report.dataset = dataset;
  report.ranks = p;

  svmcore::TrainOptions options;
  options.num_ranks = p;
  options.heuristic = svmcore::Heuristic::parse(heuristic);

  svmcore::TrainResult serial_result;
  svmcore::TrainResult pipelined_result;
  report.serial.recon_wall_s = 1e300;
  report.pipelined.recon_wall_s = 1e300;
  for (int r = 0; r < repeats; ++r) {
    options.pipelined_reconstruction = false;
    serial_result = svmcore::train(train, params, options);
    report.serial.recon_wall_s =
        std::min(report.serial.recon_wall_s, serial_result.reconstruction_seconds);
    options.pipelined_reconstruction = true;
    pipelined_result = svmcore::train(train, params, options);
    report.pipelined.recon_wall_s =
        std::min(report.pipelined.recon_wall_s, pipelined_result.reconstruction_seconds);
  }

  // Modeled ring network time: the gross alpha-beta cost is identical in both
  // modes (same blocks circulate the same ring); the pipelined mode keeps
  // only the part compute could not hide (max(compute, comm) charging).
  report.serial.net_modeled_s = serial_result.recon_comm_seconds;
  report.serial.scatter_builds = serial_result.recon_scatter_builds;
  report.pipelined.net_modeled_s =
      pipelined_result.recon_comm_seconds - pipelined_result.recon_overlapped_seconds;
  report.pipelined.scatter_builds = pipelined_result.recon_scatter_builds;

  report.wall_speedup = report.pipelined.recon_wall_s > 0
                            ? report.serial.recon_wall_s / report.pipelined.recon_wall_s
                            : 0.0;
  // Full overlap drives the pipelined net cost to zero; floor the divisor at
  // 1% of the serial cost so the speedup stays a finite, monotone figure of
  // merit (capped at 100x) and the JSON holds no infinities.
  report.net_speedup =
      report.serial.net_modeled_s > 0
          ? report.serial.net_modeled_s /
                std::max(report.pipelined.net_modeled_s, 0.01 * report.serial.net_modeled_s)
          : 0.0;
  report.overlap_ratio = pipelined_result.recon_comm_seconds > 0
                             ? pipelined_result.recon_overlapped_seconds /
                                   pipelined_result.recon_comm_seconds
                             : 0.0;
  report.ring_steps = pipelined_result.recon_ring_steps;
  report.overlapped_steps = pipelined_result.recon_overlapped_steps;
  report.reconstructions = pipelined_result.reconstructions;
  report.scatter_builds_saved = pipelined_result.recon_scatter_builds_saved;
  const std::uint64_t total_rank_steps =
      pipelined_result.recon_ring_steps * static_cast<std::uint64_t>(p);
  report.scatters_per_step =
      total_rank_steps > 0 ? static_cast<double>(pipelined_result.recon_scatter_builds) /
                                 static_cast<double>(total_rank_steps)
                           : 0.0;
  report.parity_ok = models_bit_identical(serial_result, pipelined_result);
  return report;
}

void write_json(const std::vector<PipelineReport>& reports, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"gradrecon_pipeline\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const PipelineReport& r = reports[i];
    std::fprintf(
        f,
        "    {\n"
        "      \"dataset\": \"%s\",\n"
        "      \"ranks\": %d,\n"
        "      \"reconstructions\": %" PRIu64 ",\n"
        "      \"ring_steps\": %" PRIu64 ",\n"
        "      \"serial\": {\"recon_wall_s\": %.6f, \"net_modeled_s\": %.9f, "
        "\"scatter_builds\": %" PRIu64 "},\n"
        "      \"pipelined\": {\"recon_wall_s\": %.6f, \"net_modeled_s\": %.9f, "
        "\"scatter_builds\": %" PRIu64 ", \"overlapped_steps\": %" PRIu64 "},\n"
        "      \"wall_speedup\": %.3f,\n"
        "      \"net_speedup\": %.3f,\n"
        "      \"overlap_ratio\": %.4f,\n"
        "      \"scatter_builds_per_step\": %.2f,\n"
        "      \"scatter_builds_saved\": %" PRIu64 ",\n"
        "      \"parity_ok\": %s\n"
        "    }%s\n",
        r.dataset.c_str(), r.ranks, r.reconstructions, r.ring_steps, r.serial.recon_wall_s,
        r.serial.net_modeled_s, r.serial.scatter_builds, r.pipelined.recon_wall_s,
        r.pipelined.net_modeled_s, r.pipelined.scatter_builds, r.overlapped_steps,
        r.wall_speedup, r.net_speedup, r.overlap_ratio, r.scatters_per_step,
        r.scatter_builds_saved, r.parity_ok ? "true" : "false",
        i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto [flags, args] = svmbench::parse_args_with(argc, argv, {"repeats", "assert!"});
  const int repeats = static_cast<int>(flags.get_double("repeats", args.quick ? 3 : 5));
  const bool assert_pipeline = flags.get_bool("assert");

  svmbench::print_banner(
      "Figure 8 - gradient reconstruction time fraction (Multi5pc)",
      "ratio of reconstruction time to total time decreases with scale; <10% for HIGGS at "
      "4096 processes");

  const struct {
    const char* dataset;
    double scale_hint;
  } workloads[] = {{"higgs", 0.2}, {"url", 0.2}, {"forest", 0.25}, {"realsim", 0.3}};
  const std::vector<int> rank_list = args.ranks.empty() ? std::vector<int>{1, 2, 4, 8}
                                                        : args.ranks;

  svmutil::TextTable table({"dataset", "p", "recon s", "total s", "wall frac %",
                            "work frac %", "recon rounds", "overlap %", "scatters saved"});
  for (const auto& workload : workloads) {
    const auto& entry = svmdata::zoo_entry(workload.dataset);
    const auto train = svmdata::make_train(entry, workload.scale_hint * args.scale);
    const auto params = svmbench::params_for(entry, args.eps);
    for (const int p : rank_list) {
      svmcore::TrainOptions options;
      options.num_ranks = p;
      options.heuristic = svmcore::Heuristic::best();
      const auto result = svmcore::train(train, params, options);
      const double wall_fraction = result.solve_seconds > 0
                                       ? result.reconstruction_seconds / result.solve_seconds
                                       : 0.0;
      // Work fraction is the scale-free proxy: kernel evaluations spent in
      // Algorithm 3 over all kernel evaluations. Wall fractions on this
      // 1-core container are distorted by thread time-sharing.
      const double work_fraction =
          result.total_kernel_evaluations > 0
              ? static_cast<double>(result.recon_kernel_evaluations) /
                    static_cast<double>(result.total_kernel_evaluations)
              : 0.0;
      const double overlap = result.recon_comm_seconds > 0
                                 ? result.recon_overlapped_seconds / result.recon_comm_seconds
                                 : 0.0;
      table.add_row({workload.dataset, svmutil::TextTable::integer(p),
                     svmutil::TextTable::num(result.reconstruction_seconds, 3),
                     svmutil::TextTable::num(result.solve_seconds, 3),
                     svmutil::TextTable::num(100.0 * wall_fraction, 2),
                     svmutil::TextTable::num(100.0 * work_fraction, 2),
                     svmutil::TextTable::integer(result.reconstructions),
                     svmutil::TextTable::num(100.0 * overlap, 1),
                     svmutil::TextTable::integer(result.recon_scatter_builds_saved)});
    }
  }
  table.print();
  std::printf(
      "\nshape to compare with the paper: within each dataset the fraction should not\n"
      "grow with p (the paper reports it decreasing at large scale).\n\n");

  // --- pipelined vs serial ring --------------------------------------------
  svmbench::print_banner(
      "Pipelined vs serial reconstruction ring",
      "double-buffered Isend/Irecv posted before the block compute; exchange charged "
      "max(compute, comm) modeled seconds; adaptive min(|omega|, |block|) scatters");

  const std::vector<int> compare_ranks = args.ranks.empty() ? std::vector<int>{4, 8}
                                                            : args.ranks;
  // Workloads chosen so the adaptive orientation actually flips (circulating
  // support blocks smaller than the shrunk sets): the pipelined ring then
  // does strictly fewer query scatters than the serial one, on top of the
  // comm overlap — both axes of the comparison are exercised.
  const struct {
    const char* dataset;
    const char* heuristic;
    double scale_hint;
  } compare_workloads[] = {{"codrna", "Multi5pc", 0.5}, {"a9a", "Single50pc", 0.5}};
  std::vector<PipelineReport> reports;
  for (const auto& workload : compare_workloads) {
    const auto& entry = svmdata::zoo_entry(workload.dataset);
    const auto train = svmdata::make_train(entry, workload.scale_hint * args.scale);
    const auto params = svmbench::params_for(entry, args.eps);
    for (const int p : compare_ranks) {
      if (p < 2) continue;  // a 1-rank ring has no exchange to overlap
      reports.push_back(
          compare_modes(train, params, workload.dataset, workload.heuristic, p, repeats));
    }
  }

  svmutil::TextTable pipe_table({"dataset", "p", "serial wall s", "pipel wall s", "wall x",
                                 "serial net s", "pipel net s", "net x", "overlap %",
                                 "scat/step", "scat saved", "parity"});
  for (const PipelineReport& r : reports)
    pipe_table.add_row({r.dataset, svmutil::TextTable::integer(r.ranks),
                        svmutil::TextTable::num(r.serial.recon_wall_s, 4),
                        svmutil::TextTable::num(r.pipelined.recon_wall_s, 4),
                        svmutil::TextTable::num(r.wall_speedup, 2),
                        svmutil::TextTable::num(r.serial.net_modeled_s, 6),
                        svmutil::TextTable::num(r.pipelined.net_modeled_s, 6),
                        svmutil::TextTable::num(r.net_speedup, 2),
                        svmutil::TextTable::num(100.0 * r.overlap_ratio, 1),
                        svmutil::TextTable::num(r.scatters_per_step, 1),
                        svmutil::TextTable::integer(r.scatter_builds_saved),
                        r.parity_ok ? "OK" : "BROKEN"});
  pipe_table.print();
  std::printf("\n");

  write_json(reports, "BENCH_gradrecon.json");

  bool ok = true;
  for (const PipelineReport& r : reports) {
    if (!r.parity_ok) {
      std::fprintf(stderr, "PARITY VIOLATION on %s p=%d: serial and pipelined models differ\n",
                   r.dataset.c_str(), r.ranks);
      ok = false;
    }
    if (r.pipelined.net_modeled_s >= r.serial.net_modeled_s) {
      std::fprintf(stderr,
                   "OVERLAP VIOLATION on %s p=%d: pipelined modeled net %.9fs not below "
                   "serial %.9fs\n",
                   r.dataset.c_str(), r.ranks, r.pipelined.net_modeled_s,
                   r.serial.net_modeled_s);
      ok = false;
    }
    if (assert_pipeline && r.pipelined.recon_wall_s > r.serial.recon_wall_s) {
      std::fprintf(stderr,
                   "PERF REGRESSION on %s p=%d: pipelined recon wall %.6fs exceeds serial "
                   "%.6fs\n",
                   r.dataset.c_str(), r.ranks, r.pipelined.recon_wall_s,
                   r.serial.recon_wall_s);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
