// Figure 8: fraction of overall time spent in gradient reconstruction with
// the best heuristic (Multi5pc), for the four large datasets, as a function
// of process count. Paper: the ratio DECREASES with scale (it stays under
// ~10% at 4096 processes for HIGGS) because per-rank reconstruction work is
// Theta(N/p)*A while the iterative phase loses efficiency more slowly.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner(
      "Figure 8 - gradient reconstruction time fraction (Multi5pc)",
      "ratio of reconstruction time to total time decreases with scale; <10% for HIGGS at "
      "4096 processes");

  const struct {
    const char* dataset;
    double scale_hint;
  } workloads[] = {{"higgs", 0.2}, {"url", 0.2}, {"forest", 0.25}, {"realsim", 0.3}};
  const std::vector<int> rank_list = args.ranks.empty() ? std::vector<int>{1, 2, 4, 8}
                                                        : args.ranks;

  svmutil::TextTable table({"dataset", "p", "recon s", "total s", "wall frac %",
                            "work frac %", "recon rounds"});
  for (const auto& workload : workloads) {
    const auto& entry = svmdata::zoo_entry(workload.dataset);
    const auto train = svmdata::make_train(entry, workload.scale_hint * args.scale);
    const auto params = svmbench::params_for(entry, args.eps);
    for (const int p : rank_list) {
      svmcore::TrainOptions options;
      options.num_ranks = p;
      options.heuristic = svmcore::Heuristic::best();
      const auto result = svmcore::train(train, params, options);
      const double wall_fraction = result.solve_seconds > 0
                                       ? result.reconstruction_seconds / result.solve_seconds
                                       : 0.0;
      // Work fraction is the scale-free proxy: kernel evaluations spent in
      // Algorithm 3 over all kernel evaluations. Wall fractions on this
      // 1-core container are distorted by thread time-sharing.
      const double work_fraction =
          result.total_kernel_evaluations > 0
              ? static_cast<double>(result.recon_kernel_evaluations) /
                    static_cast<double>(result.total_kernel_evaluations)
              : 0.0;
      table.add_row({workload.dataset, svmutil::TextTable::integer(p),
                     svmutil::TextTable::num(result.reconstruction_seconds, 3),
                     svmutil::TextTable::num(result.solve_seconds, 3),
                     svmutil::TextTable::num(100.0 * wall_fraction, 2),
                     svmutil::TextTable::num(100.0 * work_fraction, 2),
                     svmutil::TextTable::integer(result.reconstructions)});
    }
  }
  table.print();
  std::printf(
      "\nshape to compare with the paper: within each dataset the fraction should not\n"
      "grow with p (the paper reports it decreasing at large scale).\n");
  return 0;
}
