// Serving bench: drives svmserve's fault-tolerant prediction service over a
// freshly trained model and reports the saturation curve (latency percentiles
// vs offered QPS, open-loop Poisson clients) plus three deterministic fault
// regimes — none, low (one worker rank dies mid-run) and high (a death, a
// dropped reply and an injected-slow rank together). Emits
// BENCH_serving.json for the bench_diff gate.
//
// The contract (exit status, strict under --assert):
//   - at 0.7x the measured saturation throughput, p99 stays under the
//     deadline and nothing is shed;
//   - at 2x saturation the service sheds at admission — the queue's
//     high-water mark respects its bound, and the p99 of ACCEPTED requests
//     stays under the deadline (graceful, never unbounded, degradation);
//   - the low-fault regime answers every request (zero failed) with decision
//     values bit-identical to the fault-free run — replica failover changes
//     who answered, never the answer;
//   - with degrade_enabled, the same 2x overload engages precision shedding
//     (degraded batches answered from the f32 store) and each query class
//     keeps >= 99% sign agreement with the exact model.
//
// Usage: bench_serving [--quick] [--assert] [--requests=N] [--scale=S]
//                      [--trace-out=T] [--metrics-out=M]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "serve/serving.hpp"

namespace {

struct CurveRow {
  double fraction = 0.0;
  double offered_qps = 0.0;
  svmserve::ServeReport report;
};

struct RegimeRow {
  std::string name;
  std::size_t fault_events = 0;
  bool bit_identical = true;
  svmserve::ServeReport report;
};

/// Precision-shedding regime: the 2x-overload run with degrade_enabled plus
/// the per-query-class sign-agreement measurement against the exact model.
struct DegradedRow {
  svmserve::ServeReport report;
  std::uint64_t degraded_requests = 0;
  double agreement_pos = 0.0;  ///< +1-class sign agreement vs exact f64
  double agreement_neg = 0.0;  ///< -1-class sign agreement vs exact f64
};

void write_json(const std::vector<CurveRow>& curve, const std::vector<RegimeRow>& regimes,
                const DegradedRow& degraded, double saturation_qps,
                const svmserve::ServeOptions& opt, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serving\",\n  \"shards\": %d,\n  \"replicas\": %d,\n"
               "  \"queue_capacity\": %zu,\n  \"deadline_s\": %.3f,\n"
               "  \"saturation_per_s\": %.1f,\n",
               opt.shards, opt.replicas, opt.queue_capacity, opt.deadline_s, saturation_qps);
  std::fprintf(f, "  \"curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const svmserve::ServeReport& r = curve[i].report;
    std::fprintf(f,
                 "    {\n"
                 "      \"saturation_fraction\": %.2f,\n"
                 "      \"offered_per_s\": %.1f,\n"
                 "      \"accepted_per_s\": %.1f,\n"
                 "      \"completed_per_s\": %.1f,\n"
                 "      \"latency_p50_s\": %.6f,\n"
                 "      \"latency_p99_s\": %.6f,\n"
                 "      \"latency_p999_s\": %.6f,\n"
                 "      \"shed\": %llu,\n"
                 "      \"expired\": %llu,\n"
                 "      \"requests_lost\": %llu,\n"
                 "      \"max_queue_depth\": %zu\n"
                 "    }%s\n",
                 curve[i].fraction, curve[i].offered_qps, r.accepted_qps, r.completed_qps,
                 r.latency_p50_s, r.latency_p99_s, r.latency_p999_s,
                 static_cast<unsigned long long>(r.shed_queue_full + r.shed_predicted_wait),
                 static_cast<unsigned long long>(r.expired),
                 static_cast<unsigned long long>(r.failed), r.max_queue_depth,
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"regimes\": [\n");
  for (std::size_t i = 0; i < regimes.size(); ++i) {
    const svmserve::ServeReport& r = regimes[i].report;
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"fault_events\": %zu,\n"
                 "      \"completed\": %llu,\n"
                 "      \"requests_lost\": %llu,\n"
                 "      \"retries\": %llu,\n"
                 "      \"hedges\": %llu,\n"
                 "      \"failovers\": %llu,\n"
                 "      \"quarantines\": %llu,\n"
                 "      \"ranks_lost\": %zu,\n"
                 "      \"latency_p99_s\": %.6f,\n"
                 "      \"bit_identical\": %d\n"
                 "    }%s\n",
                 regimes[i].name.c_str(), regimes[i].fault_events,
                 static_cast<unsigned long long>(r.completed),
                 static_cast<unsigned long long>(r.failed),
                 static_cast<unsigned long long>(r.retries),
                 static_cast<unsigned long long>(r.hedges),
                 static_cast<unsigned long long>(r.failovers),
                 static_cast<unsigned long long>(r.quarantines), r.ranks_lost.size(),
                 r.latency_p99_s, regimes[i].bit_identical ? 1 : 0,
                 i + 1 < regimes.size() ? "," : "");
  }
  const svmserve::ServeReport& d = degraded.report;
  std::fprintf(f,
               "  ],\n  \"degraded\": {\n"
               "    \"saturation_fraction\": 2.0,\n"
               "    \"degraded_batches\": %llu,\n"
               "    \"degraded_requests\": %llu,\n"
               "    \"completed\": %llu,\n"
               "    \"requests_lost\": %llu,\n"
               "    \"max_queue_depth\": %zu,\n"
               "    \"latency_p99_s\": %.6f,\n"
               "    \"agreement_pos\": %.6f,\n"
               "    \"agreement_neg\": %.6f\n"
               "  }\n}\n",
               static_cast<unsigned long long>(d.degraded_batches),
               static_cast<unsigned long long>(degraded.degraded_requests),
               static_cast<unsigned long long>(d.completed),
               static_cast<unsigned long long>(d.failed), d.max_queue_depth, d.latency_p99_s,
               degraded.agreement_pos, degraded.agreement_neg);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

bool all_terminal(const svmserve::ServeReport& report) {
  for (const svmserve::RequestRecord& rec : report.requests)
    if (rec.status == svmserve::RequestStatus::pending) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto [flags, args] = svmbench::parse_args_with(argc, argv, {"requests", "assert!"});
  const svmutil::ObsPaths obs{args.trace_out, args.metrics_out};
  const bool quick = args.quick;
  const bool strict = flags.get_bool("assert");
  const double scale = flags.get_double("scale", quick ? 0.5 : 1.0);
  const std::size_t requests = static_cast<std::size_t>(
      flags.get_int("requests", quick ? 2048 : 4096));

  svmbench::print_banner(
      "serving - fault-tolerant prediction service under load and faults",
      "sharded+replicated svmserve workers; saturation curve, overload shedding "
      "and replica failover with bit-identical answers");

  // --- model + queries -------------------------------------------------------
  const svmdata::Dataset train_data =
      svmdata::synthetic::gaussian_blobs({.n = static_cast<std::size_t>(240 * scale),
                                          .d = 8,
                                          .separation = 2.0,
                                          .label_noise = 0.02,
                                          .seed = 41});
  svmcore::TrainOptions train_options;
  train_options.num_ranks = 2;
  const svmcore::TrainResult trained =
      svmcore::train(train_data, svmcore::SolverParams{}, train_options);
  const svmcore::SvmModel& model = trained.model;
  const svmdata::Dataset query_data =
      svmdata::synthetic::gaussian_blobs({.n = static_cast<std::size_t>(160 * scale),
                                          .d = 8,
                                          .separation = 2.0,
                                          .label_noise = 0.02,
                                          .seed = 41,
                                          .draw = 1});
  const svmdata::CsrMatrix& queries = query_data.X;
  std::printf("model: %zu support vectors; %zu query rows\n\n",
              model.num_support_vectors(), queries.rows());

  svmserve::ServeOptions opt;
  opt.shards = 2;
  opt.replicas = 2;
  opt.queue_capacity = 512;
  opt.batch_max = 8;
  opt.deadline_s = 0.2;
  opt.dispatch_timeout_s = 0.5;
  // A 50us modeled per-message latency makes the per-batch service time
  // mostly deterministic, so the measured saturation point (and the curve
  // shape around it) is stable against host scheduling jitter; the 512-deep
  // queue rides out multi-millisecond hiccups below saturation while still
  // filling (and shedding) within a fraction of a run at 2x.
  opt.net_model = svmmpi::NetModel{50e-6, 0.0, 5.0};

  bool ok = true;
  const auto gate = [&](bool pass, const char* what) {
    if (!pass) {
      std::printf("GATE %s: %s\n", strict ? "FAILED" : "failed (advisory)", what);
      ok = false;
    }
  };

  // --- saturation measurement ------------------------------------------------
  // An open-loop burst probe: offer far beyond any plausible capacity so the
  // queue fills immediately and admission sheds the excess — the completion
  // rate of what WAS admitted is the service's queue-limited drain rate,
  // i.e. the saturation throughput under exactly the client configuration
  // (one open-loop thread) the curve below uses. Closed-loop clients would
  // need enough threads to keep the batcher full, and on a small host the
  // client threads themselves then depress the measurement.
  svmserve::LoadSpec sat_load;
  sat_load.mode = svmserve::ArrivalMode::open_poisson;
  sat_load.requests = requests;
  sat_load.offered_qps = 5e6;
  sat_load.seed = 21;
  const svmserve::ServeReport sat = svmserve::run_serving(model, queries, sat_load, opt);
  const double saturation_qps = sat.completed_qps;
  std::printf("saturation (open-loop burst probe): %.0f req/s\n\n", saturation_qps);
  gate(sat.completed > 0 && sat.failed == 0, "saturation probe answered its admitted load");

  // --- open-loop saturation curve -------------------------------------------
  const std::vector<double> fractions =
      quick ? std::vector<double>{0.7, 2.0} : std::vector<double>{0.3, 0.5, 0.7, 1.0, 1.5, 2.0};
  svmutil::TextTable curve_table({"x sat", "offered/s", "accepted/s", "done/s", "p50 ms",
                                  "p99 ms", "p99.9 ms", "shed", "lost", "max q"});
  std::vector<CurveRow> curve;
  for (const double f : fractions) {
    svmserve::LoadSpec load;
    load.mode = svmserve::ArrivalMode::open_poisson;
    load.requests = requests;
    load.offered_qps = f * saturation_qps;
    load.seed = 22;
    const svmserve::ServeReport r = svmserve::run_serving(model, queries, load, opt);
    const std::uint64_t shed = r.shed_queue_full + r.shed_predicted_wait;
    gate(all_terminal(r), "open-loop run left no request pending");
    gate(r.max_queue_depth <= opt.queue_capacity, "queue high-water mark within bound");
    if (f <= 0.7) {
      gate(shed == 0, "no shedding below saturation");
      gate(r.latency_p99_s < opt.deadline_s, "p99 under deadline below saturation");
    }
    if (f >= 2.0) {
      gate(shed > 0, "overload sheds at admission");
      gate(r.latency_p99_s < opt.deadline_s, "accepted-p99 bounded at 2x overload");
    }
    curve_table.add_row(
        {svmutil::TextTable::num(f, 2), svmutil::TextTable::num(load.offered_qps, 0),
         svmutil::TextTable::num(r.accepted_qps, 0), svmutil::TextTable::num(r.completed_qps, 0),
         svmutil::TextTable::num(r.latency_p50_s * 1e3, 2),
         svmutil::TextTable::num(r.latency_p99_s * 1e3, 2),
         svmutil::TextTable::num(r.latency_p999_s * 1e3, 2),
         svmutil::TextTable::integer(static_cast<long long>(shed)),
         svmutil::TextTable::integer(static_cast<long long>(r.failed)),
         svmutil::TextTable::integer(static_cast<long long>(r.max_queue_depth))});
    curve.push_back({f, load.offered_qps, std::move(r)});
  }
  curve_table.print();
  std::printf("\n");

  // --- fault regimes ---------------------------------------------------------
  // Closed loop: the completion set is deterministic, so the low regime can
  // be compared request-by-request against the fault-free run.
  svmserve::LoadSpec fault_load;
  fault_load.mode = svmserve::ArrivalMode::closed_loop;
  fault_load.requests = quick ? 96 : 192;
  fault_load.clients = 2;
  fault_load.seed = 23;
  svmserve::ServeOptions fault_opt = opt;
  fault_opt.deadline_s = 5.0;           // faults cost retries, not expiries
  fault_opt.dispatch_timeout_s = 0.05;  // detect drops/delays quickly

  struct Regime {
    const char* name;
    svmmpi::FaultPlan plan;
  };
  // Worker op horizon: 1 ready send, then 2 ops (recv, send) per served
  // batch. Op 3 is a worker's FIRST reply send — guaranteed to fire, since
  // the dispatcher always probes an unsampled replica before settling on the
  // EWMA winner — so die(rank, 3) kills the rank mid-batch with requests in
  // flight. Rank 1 = replica 0 of shard 0, rank 2 = replica 0 of shard 1,
  // rank 4 = replica 1 of shard 1.
  std::vector<Regime> regimes;
  regimes.push_back({"none", svmmpi::FaultPlan{}});
  regimes.push_back({"low", svmmpi::FaultPlan{}.die(1, 3)});
  regimes.push_back({"high", svmmpi::FaultPlan{}
                                 .die(1, 3)
                                 .drop(2, 3)
                                 .delay(4, 2, 0.2)});

  svmutil::TextTable fault_table({"regime", "faults", "done", "lost", "retries", "hedges",
                                  "failovers", "quarantined", "ranks lost", "p99 ms",
                                  "bit-identical"});
  std::vector<RegimeRow> rows;
  for (Regime& regime : regimes) {
    svmserve::ServeOptions run_opt = fault_opt;
    run_opt.fault_plan = &regime.plan;
    if (std::string(regime.name) == "low") {
      // The low regime carries the observability artifacts.
      run_opt.trace_path = obs.trace_out;
      run_opt.metrics_path = obs.metrics_out;
    }
    const svmserve::ServeReport r = svmserve::run_serving(model, queries, fault_load, run_opt);

    bool identical = true;
    if (!rows.empty()) {
      const svmserve::ServeReport& clean = rows[0].report;
      for (std::size_t i = 0; i < fault_load.requests; ++i) {
        if (r.requests[i].status != svmserve::RequestStatus::completed ||
            r.requests[i].decision != clean.requests[i].decision) {
          identical = false;
          break;
        }
      }
    }
    gate(all_terminal(r), "fault regime left no request pending");
    if (std::string(regime.name) == "none")
      gate(r.completed == fault_load.requests && r.failed == 0,
           "fault-free regime completed everything");
    if (std::string(regime.name) == "low") {
      gate(r.failed == 0, "low-fault regime: zero failed responses");
      gate(r.ranks_lost.size() == 1, "low-fault regime: exactly one rank died");
      gate(identical, "low-fault regime: answers bit-identical to fault-free run");
    }
    fault_table.add_row(
        {regime.name,
         svmutil::TextTable::integer(static_cast<long long>(regime.plan.events().size())),
         svmutil::TextTable::integer(static_cast<long long>(r.completed)),
         svmutil::TextTable::integer(static_cast<long long>(r.failed)),
         svmutil::TextTable::integer(static_cast<long long>(r.retries)),
         svmutil::TextTable::integer(static_cast<long long>(r.hedges)),
         svmutil::TextTable::integer(static_cast<long long>(r.failovers)),
         svmutil::TextTable::integer(static_cast<long long>(r.quarantines)),
         svmutil::TextTable::integer(static_cast<long long>(r.ranks_lost.size())),
         svmutil::TextTable::num(r.latency_p99_s * 1e3, 2), identical ? "yes" : "NO"});
    rows.push_back({regime.name, regime.plan.events().size(), identical, std::move(r)});
  }
  fault_table.print();

  const RegimeRow& low = rows[1];
  std::printf("\nlow-fault regime: %llu failed response(s), answers %s\n",
              static_cast<unsigned long long>(low.report.failed),
              low.bit_identical ? "bit-identical to the fault-free run" : "DIVERGED");

  // --- degraded regime (precision shedding) ---------------------------------
  // The same 2x-overload open-loop offer with degrade_enabled: batches formed
  // while the queue sits past degrade_queue_frac of capacity are scored by
  // the reduced-precision (f32) engine instead of being shed outright. The
  // regime must actually exercise the dark path, keep the overload latency
  // contract, and hold per-query-class sign agreement with the exact model:
  // shedding precision may dither near-zero margins, never flip a class's
  // answers wholesale.
  svmserve::ServeOptions degrade_opt = opt;
  degrade_opt.degrade_enabled = true;
  svmserve::LoadSpec degrade_load;
  degrade_load.mode = svmserve::ArrivalMode::open_poisson;
  degrade_load.requests = requests;
  degrade_load.offered_qps = 2.0 * saturation_qps;
  degrade_load.seed = 24;
  const svmserve::ServeReport deg =
      svmserve::run_serving(model, queries, degrade_load, degrade_opt);

  DegradedRow degraded;
  std::size_t class_total[2] = {0, 0};
  std::size_t class_match[2] = {0, 0};
  for (const svmserve::RequestRecord& rec : deg.requests) {
    if (rec.status != svmserve::RequestStatus::completed) continue;
    if (rec.degraded) ++degraded.degraded_requests;
    const std::size_t cls = query_data.y[rec.query_row] > 0 ? 0 : 1;
    const double exact = model.decision_value(queries.row(rec.query_row));
    ++class_total[cls];
    if ((rec.decision >= 0.0) == (exact >= 0.0)) ++class_match[cls];
  }
  degraded.agreement_pos =
      class_total[0] > 0 ? static_cast<double>(class_match[0]) / class_total[0] : 0.0;
  degraded.agreement_neg =
      class_total[1] > 0 ? static_cast<double>(class_match[1]) / class_total[1] : 0.0;

  gate(all_terminal(deg), "degraded regime left no request pending");
  gate(deg.max_queue_depth <= degrade_opt.queue_capacity,
       "degraded regime: queue high-water mark within bound");
  gate(deg.degraded_batches > 0, "precision shedding engaged at 2x overload");
  gate(deg.latency_p99_s < degrade_opt.deadline_s, "degraded regime: accepted-p99 under deadline");
  gate(class_total[0] > 0 && class_total[1] > 0,
       "degraded regime measured both query classes");
  gate(degraded.agreement_pos >= 0.99,
       "degraded regime: +1-class sign agreement >= 99% vs exact model");
  gate(degraded.agreement_neg >= 0.99,
       "degraded regime: -1-class sign agreement >= 99% vs exact model");

  svmutil::TextTable degrade_table({"x sat", "done", "degraded batches", "degraded reqs",
                                    "p99 ms", "+1 agree %", "-1 agree %"});
  degrade_table.add_row(
      {svmutil::TextTable::num(2.0, 1),
       svmutil::TextTable::integer(static_cast<long long>(deg.completed)),
       svmutil::TextTable::integer(static_cast<long long>(deg.degraded_batches)),
       svmutil::TextTable::integer(static_cast<long long>(degraded.degraded_requests)),
       svmutil::TextTable::num(deg.latency_p99_s * 1e3, 2),
       svmutil::TextTable::num(degraded.agreement_pos * 100.0, 2),
       svmutil::TextTable::num(degraded.agreement_neg * 100.0, 2)});
  std::printf("\ndegraded regime (precision shedding at 2x saturation):\n");
  degrade_table.print();
  degraded.report = deg;

  write_json(curve, rows, degraded, saturation_qps, opt, "BENCH_serving.json");
  if (!strict && !ok) std::printf("(advisory gates failed; rerun with --assert to enforce)\n");
  return strict && !ok ? 1 : 0;
}
