// Precision-flavor benchmark: throughput vs memory vs accuracy for the
// RowStore kernel data path, per flavor (f64/f32/f16/i8) and backend
// (scalar dense_scatter baseline vs vectorized simd panels), on the two
// dense-shaped zoo datasets the flavored path targets (higgs tabular rows,
// usps pixel rows).
//
// Writes BENCH_precision.json. With --assert the run exits nonzero unless
// every gate holds:
//   - simd/f64 reproduces the scalar kernel sweep BITWISE,
//   - simd/f32 kernel-eval throughput >= 1.5x the scalar double baseline,
//   - prediction disagreement vs f64 <= 0.5% (f32), 1% (f16), 2% (i8).
//
// Usage: bench_precision [--scale S] [--repeats R] [--quick] [--assert]
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/timer.hpp"

namespace {

using svmdata::Dataset;
using svmkernel::EngineBackend;
using svmkernel::Kernel;
using svmkernel::KernelEngine;
using svmkernel::RowFlavor;

struct ConfigReport {
  std::string backend;
  std::string flavor;
  double seconds = 0.0;
  double evals_per_s_throughput = 0.0;  ///< kernel values produced / second
  std::size_t store_bytes = 0;          ///< resident flavored row payload
  double accuracy = 0.0;                ///< test accuracy with this engine
  double disagreement = 0.0;            ///< decision flips vs the f64 engine
  bool bitwise_equal_f64 = true;        ///< sweep values match scalar bitwise
};

struct DatasetReport {
  std::string name;
  std::size_t n = 0, d = 0, test_n = 0;
  std::vector<ConfigReport> configs;
  double simd_f32_speedup_vs_scalar = 0.0;
};

/// Runs `repeats` fused gamma-update sweeps (the solver's hot loop). When
/// `out` is non-null, captures every produced value for the cross-config
/// bitwise check (timed trials pass null so the window is pure kernel work).
double run_sweeps(KernelEngine& engine, const Dataset& train, int repeats,
                  std::vector<double>* out) {
  const std::size_t n = train.size();
  std::vector<double> k_up(n), k_low(n);
  if (out != nullptr) out->resize(static_cast<std::size_t>(repeats) * n * 2);
  svmutil::Timer timer;
  for (int r = 0; r < repeats; ++r) {
    const std::size_t up = static_cast<std::size_t>(r) * 2 % n;
    const std::size_t low = (up + n / 2 + 1) % n;
    engine.eval_pair_range(train.X.row(up), engine.sq_norm(up), train.X.row(low),
                           engine.sq_norm(low), 0, n, k_up, k_low);
    if (out != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        (*out)[(static_cast<std::size_t>(r) * n + i) * 2] = k_up[i];
        (*out)[(static_cast<std::size_t>(r) * n + i) * 2 + 1] = k_low[i];
      }
    }
  }
  return timer.seconds();
}

/// Min-time estimator for a time-shared single core, sampling every config
/// round-robin. Two noise sources shape this design. (1) Window averages are
/// the wrong tool: any window long enough to amortize timer overhead also
/// spans scheduler quanta, so every window is inflated by whoever preempted
/// it. One sweep is tens of microseconds — far below a scheduling quantum —
/// so most single-sweep samples run interruption-free and the per-config
/// minimum converges on the clean compute time. (2) The core drifts between
/// frequency states over seconds; timing configs in separate back-to-back
/// blocks lets that drift land on one side of a speedup ratio (observed: the
/// scalar baseline swinging ~40% between otherwise identical runs).
/// Interleaving the samples puts every config in every machine state, so the
/// minima compare like with like. Returns per-engine seconds for one sweep.
std::vector<double> interleaved_min_sweeps(std::vector<std::unique_ptr<KernelEngine>>& engines,
                                           const Dataset& train, int repeats) {
  const std::size_t n = train.size();
  std::vector<double> k_up(n), k_low(n);
  const int samples = repeats * 5 > 500 ? repeats * 5 : 500;
  std::vector<double> best(engines.size(), std::numeric_limits<double>::infinity());
  for (int s = 0; s < samples; ++s) {
    const std::size_t up = static_cast<std::size_t>(s) * 2 % n;
    const std::size_t low = (up + n / 2 + 1) % n;
    for (std::size_t c = 0; c < engines.size(); ++c) {
      svmutil::Timer timer;
      engines[c]->eval_pair_range(train.X.row(up), engines[c]->sq_norm(up), train.X.row(low),
                                  engines[c]->sq_norm(low), 0, n, k_up, k_low);
      const double t = timer.seconds();
      if (t < best[c]) best[c] = t;
    }
  }
  return best;
}

DatasetReport run_dataset(const std::string& name, double scale, int repeats, double eps) {
  const svmdata::ZooEntry& entry = svmdata::zoo_entry(name);
  const Dataset train = svmdata::make_train(entry, scale);
  // Some zoo entries carry no test split; score the training rows then (the
  // metric that matters here is cross-flavor DISAGREEMENT, not generalization).
  Dataset test = svmdata::make_test(entry, scale);
  if (test.size() == 0) test = train;
  const Kernel kernel(svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq));
  const std::size_t n = train.size();

  DatasetReport report;
  report.name = name;
  report.n = n;
  report.d = train.dim();
  report.test_n = test.size();

  // One model for the accuracy leg (scalar f64 training; the flavors only
  // change how PREDICTION evaluates it).
  svmcore::SolverParams params = svmbench::params_for(entry, eps);
  svmcore::TrainOptions options;
  options.num_ranks = 1;
  const svmcore::TrainResult trained = svmcore::train(train, params, options);
  const svmcore::SvmModel& model = trained.model;

  // f64 reference decisions for the disagreement metric.
  std::vector<bool> f64_decisions(test.size());
  {
    auto engine = model.make_engine(EngineBackend::dense_scatter);
    for (std::size_t i = 0; i < test.size(); ++i)
      f64_decisions[i] = model.decision_value(test.X.row(i), engine) >= 0.0;
  }

  const struct {
    EngineBackend backend;
    RowFlavor flavor;
  } configs[] = {{EngineBackend::dense_scatter, RowFlavor::f64},
                 {EngineBackend::simd, RowFlavor::f64},
                 {EngineBackend::simd, RowFlavor::f32},
                 {EngineBackend::simd, RowFlavor::f16},
                 {EngineBackend::simd, RowFlavor::i8}};

  // Build every engine up front: parity values first (untimed, exactly
  // `repeats` sweeps each so the value streams align), then the round-robin
  // minimum-time sampling over all of them at once.
  double scalar_throughput = 0.0;
  const std::size_t n_configs = sizeof(configs) / sizeof(configs[0]);
  std::vector<std::unique_ptr<KernelEngine>> engines;
  std::vector<std::vector<double>> values(n_configs);
  for (std::size_t c = 0; c < n_configs; ++c) {
    engines.push_back(std::make_unique<KernelEngine>(kernel, train.X, configs[c].backend, 0, n,
                                                     /*cache_budget_bytes=*/0,
                                                     configs[c].flavor));
    (void)run_sweeps(*engines[c], train, repeats, &values[c]);
  }
  const std::vector<double> sweep_seconds = interleaved_min_sweeps(engines, train, repeats);

  for (std::size_t c = 0; c < n_configs; ++c) {
    ConfigReport r;
    r.backend = svmkernel::to_string(configs[c].backend);
    r.flavor = svmkernel::to_string(configs[c].flavor);
    r.seconds = sweep_seconds[c] * static_cast<double>(repeats);
    r.evals_per_s_throughput =
        r.seconds > 0
            ? 2.0 * static_cast<double>(repeats) * static_cast<double>(n) / r.seconds
            : 0.0;
    r.store_bytes = engines[c]->store_bytes();
    if (configs[c].backend == EngineBackend::dense_scatter) {
      scalar_throughput = r.evals_per_s_throughput;
    } else if (configs[c].flavor == RowFlavor::f64) {
      for (std::size_t i = 0; i < values[c].size(); ++i)
        if (values[c][i] != values[0][i]) r.bitwise_equal_f64 = false;
    } else {
      r.bitwise_equal_f64 = false;  // approximate by design
    }

    // Accuracy leg: score the test split through a flavored predict engine.
    auto predict_engine = model.make_engine(configs[c].backend, configs[c].flavor);
    std::size_t correct = 0, flips = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const bool decision = model.decision_value(test.X.row(i), predict_engine) >= 0.0;
      if (decision == (test.y[i] > 0.0)) ++correct;
      if (decision != f64_decisions[i]) ++flips;
    }
    r.accuracy = test.size() == 0 ? 0.0
                              : static_cast<double>(correct) / static_cast<double>(test.size());
    r.disagreement =
        test.size() == 0 ? 0.0 : static_cast<double>(flips) / static_cast<double>(test.size());
    report.configs.push_back(r);
  }

  for (const ConfigReport& r : report.configs)
    if (r.backend == "simd" && r.flavor == "f32" && scalar_throughput > 0)
      report.simd_f32_speedup_vs_scalar = r.evals_per_s_throughput / scalar_throughput;
  return report;
}

void write_json(const std::vector<DatasetReport>& reports, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"precision\",\n  \"datasets\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const DatasetReport& d = reports[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"n\": %zu,\n"
                 "      \"d\": %zu,\n"
                 "      \"test_n\": %zu,\n"
                 "      \"simd_f32_speedup_vs_scalar\": %.3f,\n"
                 "      \"configs\": [\n",
                 d.name.c_str(), d.n, d.d, d.test_n, d.simd_f32_speedup_vs_scalar);
    for (std::size_t j = 0; j < d.configs.size(); ++j) {
      const ConfigReport& c = d.configs[j];
      std::fprintf(f,
                   "        {\"backend\": \"%s\", \"flavor\": \"%s\", "
                   "\"evals_per_s_throughput\": %.1f, \"seconds\": %.6f, "
                   "\"store_bytes\": %zu, \"accuracy\": %.6f, "
                   "\"disagreement_vs_f64\": %.6f, \"bitwise_equal_f64\": %s}%s\n",
                   c.backend.c_str(), c.flavor.c_str(), c.evals_per_s_throughput, c.seconds,
                   c.store_bytes, c.accuracy, c.disagreement,
                   c.bitwise_equal_f64 ? "true" : "false",
                   j + 1 < d.configs.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

/// Gate table: per-flavor maximum decision disagreement vs the f64 engine.
double gate_for(const std::string& flavor) {
  if (flavor == "f32") return 0.005;
  if (flavor == "f16") return 0.01;
  return 0.02;  // i8
}

}  // namespace

int main(int argc, char** argv) {
  const auto [flags, args] = svmbench::parse_args_with(argc, argv, {"assert!", "repeats"});
  const bool quick = args.quick;
  const bool do_assert = flags.get_bool("assert");
  // This bench's workloads are throughput probes: smaller than the figure
  // benches' defaults, and extra-small under --quick.
  const double scale = flags.get_double("scale", 1.0) * (quick ? 0.1 : 0.25);
  const double eps = args.eps;
  const int repeats = static_cast<int>(flags.get_double("repeats", quick ? 20 : 100));

  svmbench::print_banner(
      "Precision flavors - throughput vs memory vs accuracy",
      "RowStore f64/f32/f16/i8 under the scalar and simd backends; simd f64 "
      "bit-exact, reduced flavors accuracy-gated");

  std::vector<DatasetReport> reports;
  for (const char* name : {"higgs", "usps"})
    reports.push_back(run_dataset(name, scale, repeats, eps));

  svmutil::TextTable table({"dataset", "backend", "flavor", "Mevals/s", "store MB", "acc %",
                            "disagree %", "f64-bitwise"});
  for (const DatasetReport& d : reports)
    for (const ConfigReport& c : d.configs)
      table.add_row({d.name, c.backend, c.flavor,
                     svmutil::TextTable::num(c.evals_per_s_throughput / 1e6, 2),
                     svmutil::TextTable::num(static_cast<double>(c.store_bytes) / 1e6, 2),
                     svmutil::TextTable::num(100.0 * c.accuracy, 2),
                     svmutil::TextTable::num(100.0 * c.disagreement, 3),
                     c.bitwise_equal_f64 ? "yes" : "-"});
  table.print();
  for (const DatasetReport& d : reports)
    std::printf("%s: simd/f32 speedup vs scalar double = %.2fx\n", d.name.c_str(),
                d.simd_f32_speedup_vs_scalar);
  std::printf("\n");

  write_json(reports, "BENCH_precision.json");

  int violations = 0;
  for (const DatasetReport& d : reports) {
    for (const ConfigReport& c : d.configs) {
      if (c.backend == "simd" && c.flavor == "f64" && !c.bitwise_equal_f64) {
        std::fprintf(stderr, "GATE: %s simd/f64 not bitwise equal to scalar\n",
                     d.name.c_str());
        ++violations;
      }
      if (c.backend == "simd" && c.flavor != "f64" && c.disagreement > gate_for(c.flavor)) {
        std::fprintf(stderr, "GATE: %s simd/%s disagreement %.4f > %.4f\n", d.name.c_str(),
                     c.flavor.c_str(), c.disagreement, gate_for(c.flavor));
        ++violations;
      }
    }
    if (d.simd_f32_speedup_vs_scalar < 1.5) {
      std::fprintf(stderr, "GATE: %s simd/f32 speedup %.2fx < 1.5x\n", d.name.c_str(),
                   d.simd_f32_speedup_vs_scalar);
      ++violations;
    }
  }
  if (violations > 0) {
    std::fprintf(stderr, "%d precision gate(s) violated\n", violations);
    if (do_assert) return 1;
  } else {
    std::printf("all precision gates hold\n");
  }
  return 0;
}
