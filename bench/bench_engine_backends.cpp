// KernelEngine backend comparison: gamma-update throughput of the fused
// dense_scatter path and the vectorized simd RowStore path vs the reference
// sparse merge join, on the two dataset shapes that bracket the zoo — higgs
// (dense low-dimensional tabular rows) and url (high-dimensional sparse
// binary rows; the dense RowStore is honest about how badly panels fit that
// shape). The inner loop is exactly the solver's hot loop: one (i_up, i_low)
// pair evaluated against every active row. Results go to stdout as a table
// and to BENCH_engine.json as a machine-readable artifact; the run aborts
// with a nonzero exit if any backend ever disagrees by a single bit.
//
// Usage: bench_engine_backends [--scale S] [--repeats R] [--quick]
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kernel/kernel_engine.hpp"
#include "util/timer.hpp"

namespace {

using svmdata::Dataset;
using svmkernel::EngineBackend;
using svmkernel::Kernel;
using svmkernel::KernelEngine;

struct BackendTiming {
  double seconds = 0.0;
  double pairs_per_s = 0.0;       ///< fused (K_up, K_low) sample evaluations / s
  std::uint64_t bytes_streamed = 0;
};

struct DatasetReport {
  std::string name;
  std::size_t n = 0;
  std::size_t d = 0;
  double density = 0.0;
  BackendTiming reference;
  BackendTiming dense_scatter;
  BackendTiming simd;
  double speedup = 0.0;
  double simd_speedup = 0.0;
  bool parity_ok = true;
  double train_reference_s = 0.0;
  double train_dense_s = 0.0;
  double train_speedup = 0.0;
};

/// Times `repeats` full gamma-update sweeps (every row vs a rotating pair,
/// mirroring the solver where (i_up, i_low) changes every iteration) and
/// records every produced value into `out_up`/`out_low` (sized repeats * n)
/// for the bitwise cross-backend check.
BackendTiming time_backend(const Dataset& train, const Kernel& kernel, EngineBackend backend,
                           int repeats, std::vector<double>& out_up,
                           std::vector<double>& out_low) {
  const std::size_t n = train.size();
  KernelEngine engine(kernel, train.X, backend);
  std::vector<double> k_up(n), k_low(n);

  svmutil::Timer timer;
  for (int r = 0; r < repeats; ++r) {
    const std::size_t up = static_cast<std::size_t>(r) * 2 % n;
    const std::size_t low = (up + n / 2 + 1) % n;
    engine.eval_pair_range(train.X.row(up), engine.sq_norm(up), train.X.row(low),
                           engine.sq_norm(low), 0, n, k_up, k_low);
    for (std::size_t i = 0; i < n; ++i) {
      out_up[static_cast<std::size_t>(r) * n + i] = k_up[i];
      out_low[static_cast<std::size_t>(r) * n + i] = k_low[i];
    }
  }
  BackendTiming t;
  t.seconds = timer.seconds();
  t.pairs_per_s =
      t.seconds > 0 ? static_cast<double>(repeats) * static_cast<double>(n) / t.seconds : 0.0;
  t.bytes_streamed = engine.stats().bytes_streamed;
  return t;
}

DatasetReport run_dataset(const std::string& name, double scale, int repeats, double eps) {
  const svmdata::ZooEntry& entry = svmdata::zoo_entry(name);
  const Dataset train = svmdata::make_train(entry, scale);
  const Kernel kernel(svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq));
  const std::size_t n = train.size();

  DatasetReport report;
  report.name = name;
  report.n = n;
  report.d = train.dim();
  report.density = train.X.density();

  // Both backends run the identical schedule; every value is compared
  // bitwise afterwards.
  std::vector<double> ref_up(static_cast<std::size_t>(repeats) * n);
  std::vector<double> ref_low(static_cast<std::size_t>(repeats) * n);
  std::vector<double> fused_up(ref_up.size());
  std::vector<double> fused_low(ref_low.size());
  std::vector<double> simd_up(ref_up.size());
  std::vector<double> simd_low(ref_low.size());
  report.reference =
      time_backend(train, kernel, EngineBackend::reference, repeats, ref_up, ref_low);
  report.dense_scatter =
      time_backend(train, kernel, EngineBackend::dense_scatter, repeats, fused_up, fused_low);
  report.simd = time_backend(train, kernel, EngineBackend::simd, repeats, simd_up, simd_low);
  for (std::size_t i = 0; i < ref_up.size(); ++i)
    if (fused_up[i] != ref_up[i] || fused_low[i] != ref_low[i] || simd_up[i] != ref_up[i] ||
        simd_low[i] != ref_low[i])
      report.parity_ok = false;
  report.speedup = report.reference.seconds > 0 && report.dense_scatter.seconds > 0
                       ? report.reference.seconds / report.dense_scatter.seconds
                       : 0.0;
  report.simd_speedup = report.reference.seconds > 0 && report.simd.seconds > 0
                            ? report.reference.seconds / report.simd.seconds
                            : 0.0;

  // End-to-end: the same solve with each backend (identical models are
  // test-enforced; here we time them).
  svmcore::SolverParams params = svmbench::params_for(entry, eps);
  svmcore::TrainOptions options;
  options.num_ranks = 1;
  params.engine_backend = EngineBackend::reference;
  report.train_reference_s = svmcore::train(train, params, options).solve_seconds;
  params.engine_backend = EngineBackend::dense_scatter;
  report.train_dense_s = svmcore::train(train, params, options).solve_seconds;
  report.train_speedup = report.train_dense_s > 0 && report.train_reference_s > 0
                             ? report.train_reference_s / report.train_dense_s
                             : 0.0;
  return report;
}

void write_json(const std::vector<DatasetReport>& reports, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"engine_backends\",\n  \"datasets\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const DatasetReport& r = reports[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"n\": %zu,\n"
                 "      \"d\": %zu,\n"
                 "      \"density\": %.6f,\n"
                 "      \"reference\": {\"seconds\": %.6f, \"pairs_per_s\": %.1f},\n"
                 "      \"dense_scatter\": {\"seconds\": %.6f, \"pairs_per_s\": %.1f, "
                 "\"bytes_streamed\": %" PRIu64 "},\n"
                 "      \"simd\": {\"seconds\": %.6f, \"pairs_per_s\": %.1f},\n"
                 "      \"gamma_update_speedup\": %.3f,\n"
                 "      \"simd_gamma_update_speedup\": %.3f,\n"
                 "      \"train_reference_s\": %.4f,\n"
                 "      \"train_dense_scatter_s\": %.4f,\n"
                 "      \"train_speedup\": %.3f,\n"
                 "      \"parity_ok\": %s\n"
                 "    }%s\n",
                 r.name.c_str(), r.n, r.d, r.density, r.reference.seconds,
                 r.reference.pairs_per_s, r.dense_scatter.seconds, r.dense_scatter.pairs_per_s,
                 r.dense_scatter.bytes_streamed, r.simd.seconds, r.simd.pairs_per_s, r.speedup,
                 r.simd_speedup, r.train_reference_s, r.train_dense_s, r.train_speedup,
                 r.parity_ok ? "true" : "false", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto [flags, args] = svmbench::parse_args_with(argc, argv, {"repeats"});
  const int repeats = static_cast<int>(flags.get_double("repeats", args.quick ? 20 : 100));

  svmbench::print_banner(
      "KernelEngine backends - fused dense-scatter vs reference merge join",
      "gamma-update throughput on the higgs (dense tabular) and url (sparse "
      "binary) shapes; bit-parity verified inline");

  std::vector<DatasetReport> reports;
  for (const char* name : {"higgs", "url"})
    reports.push_back(run_dataset(name, args.scale, repeats, args.eps));

  svmutil::TextTable table({"dataset", "n", "d", "density %", "ref pairs/s", "fused pairs/s",
                            "simd pairs/s", "speedup", "simd speedup", "train ref s",
                            "train fused s", "train speedup", "parity"});
  for (const DatasetReport& r : reports) {
    table.add_row({r.name, svmutil::TextTable::integer(static_cast<long long>(r.n)),
                   svmutil::TextTable::integer(static_cast<long long>(r.d)),
                   svmutil::TextTable::num(100.0 * r.density, 2),
                   svmutil::TextTable::num(r.reference.pairs_per_s / 1000.0, 1) + "k",
                   svmutil::TextTable::num(r.dense_scatter.pairs_per_s / 1000.0, 1) + "k",
                   svmutil::TextTable::num(r.simd.pairs_per_s / 1000.0, 1) + "k",
                   svmutil::TextTable::num(r.speedup, 2),
                   svmutil::TextTable::num(r.simd_speedup, 2),
                   svmutil::TextTable::num(r.train_reference_s, 3),
                   svmutil::TextTable::num(r.train_dense_s, 3),
                   svmutil::TextTable::num(r.train_speedup, 2),
                   r.parity_ok ? "OK" : "BROKEN"});
  }
  table.print();
  std::printf("\n");

  write_json(reports, "BENCH_engine.json");

  for (const DatasetReport& r : reports) {
    if (!r.parity_ok) {
      std::fprintf(stderr, "PARITY VIOLATION on %s: backends disagree bitwise\n",
                   r.name.c_str());
      return 1;
    }
  }
  return 0;
}
