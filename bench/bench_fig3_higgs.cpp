// Figure 3: UCI HIGGS scaling. Paper: 2.6M samples, up to 4096 processes;
// shrinking gives 2.27x over Default at 1024 cores and 1.56x at 4096;
// Multi5pc best, Single50pc worst; 34M iterations total.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  return svmbench::run_figure_bench(
      "Figure 3", "higgs", /*scale_hint=*/0.25, {1, 2, 4, 8},
      "Shrink(Best)=Multi5pc beats Default by 2.27x (p=1024) and 1.56x (p=4096); "
      "Shrink(Worst)=Single50pc trails Best",
      args);
}
