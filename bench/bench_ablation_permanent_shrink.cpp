// Ablation for §IV's design decision: "A possible design choice is to
// eliminate the sample permanently ... However, the algorithm may lose
// accuracy — an approach recently considered by Communication-Avoiding SVM.
// However, we consider only accurate solutions in this paper." This bench
// quantifies that trade on a noisy workload: permanent shrinking (no
// gradient reconstruction) vs the paper's reconstruction-based algorithm.
#include "bench_common.hpp"

#include "core/objective.hpp"
#include "data/synthetic.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner("Ablation - permanent shrinking (CA-SVM design choice, SIV)",
                         "permanent elimination can lose accuracy; gradient reconstruction "
                         "keeps the solution exact at modest extra cost");

  const auto train = svmdata::synthetic::gaussian_blobs(
      {.n = static_cast<std::size_t>(1200 * args.scale), .d = 8, .separation = 1.4,
       .label_noise = 0.12, .seed = 77});
  const auto test = svmdata::synthetic::gaussian_blobs(
      {.n = 1500, .d = 8, .separation = 1.4, .label_noise = 0.0, .seed = 77, .draw = 1});

  svmcore::SolverParams params;
  params.C = 8.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(8.0);

  svmutil::TextTable table({"config", "test acc %", "full-data KKT gap", "work/rank (kevals)",
                            "recon", "wall s"});
  for (const char* heuristic : {"Original", "Multi2", "Single5pc"}) {
    for (const bool permanent : {false, true}) {
      if (std::string(heuristic) == "Original" && permanent) continue;
      svmcore::TrainOptions options;
      options.num_ranks = 4;
      options.heuristic = svmcore::Heuristic::parse(heuristic);
      options.permanent_shrink = permanent;
      const auto result = svmcore::train(train, params, options);

      // Full-dataset KKT gap: for the accurate algorithms it must be within
      // 2*eps; permanent shrinking has no such guarantee.
      const double gap =
          result.rank_stats[0].final_beta_low - result.rank_stats[0].final_beta_up;

      const std::string label =
          std::string(heuristic) + (permanent ? " + permanent" : "");
      table.add_row({label, svmutil::TextTable::num(100.0 * result.model.accuracy(test), 2),
                     svmutil::TextTable::num(gap, 4),
                     svmutil::TextTable::integer(static_cast<long long>(
                         result.max_rank_kernel_evaluations / 1000)),
                     svmutil::TextTable::integer(result.reconstructions),
                     svmutil::TextTable::num(result.wall_seconds, 2)});
    }
  }
  table.print();
  std::printf("\n'+ permanent' rows skip Algorithm 3 entirely: less work, but the reported\n"
              "KKT gap is measured on the SHRUNK problem and the accuracy can drift;\n"
              "reconstruction rows must match Original's accuracy (the paper's claim).\n");
  return 0;
}
