// Comparator for the paper's related-work claim (§VI): "Cascade SVM suffers
// from load imbalance, since many processes finish their individual
// sub-problem before others... We address this limitation by providing a
// shrinking based solution." This bench trains Cascade SVM and the proposed
// shrinking solver on the same workload and reports accuracy, total work,
// and the per-leaf imbalance the paper blames.
#include "bench_common.hpp"

#include "cascade/cascade_svm.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner("Comparison - Cascade SVM (Graf et al.) vs shrinking (SVI)",
                         "Cascade SVM's leaf sub-problems finish at different times (load "
                         "imbalance); the shrinking solver keeps all ranks on one problem");

  const auto& entry = svmdata::zoo_entry("forest");
  const auto train = svmdata::make_train(entry, 0.3 * args.scale);
  const auto params = svmbench::params_for(entry, args.eps);

  svmutil::TextTable table({"method", "train acc %", "total kevals", "wall s",
                            "leaf imbalance (max/mean)", "notes"});

  for (const int levels : {2, 3}) {
    svmcascade::CascadeOptions options;
    options.params = params;
    options.levels = levels;
    svmutil::Timer timer;
    const auto cascade = svmcascade::train_cascade(train, options);
    char notes[64];
    std::snprintf(notes, sizeof(notes), "%d leaves, %zu passes", 1 << levels, cascade.passes);
    table.add_row({"Cascade L" + std::to_string(levels),
                   svmutil::TextTable::num(100.0 * cascade.model.accuracy(train), 2),
                   svmutil::TextTable::integer(
                       static_cast<long long>(cascade.total_kernel_evaluations / 1000)),
                   svmutil::TextTable::num(timer.seconds(), 2),
                   svmutil::TextTable::num(cascade.imbalance(), 2), notes});
  }

  for (const char* heuristic : {"Original", "Multi5pc"}) {
    svmcore::TrainOptions options;
    options.num_ranks = 4;
    options.heuristic = svmcore::Heuristic::parse(heuristic);
    const auto result = svmcore::train(train, params, options);
    table.add_row({std::string("Shrinking ") + heuristic,
                   svmutil::TextTable::num(100.0 * result.model.accuracy(train), 2),
                   svmutil::TextTable::integer(
                       static_cast<long long>(result.total_kernel_evaluations / 1000)),
                   svmutil::TextTable::num(result.wall_seconds, 2), "1.00 (single problem)",
                   "p=4"});
  }

  std::printf("workload: forest-like n=%zu\n\n", train.size());
  table.print();
  std::printf("\nCascade's leaf imbalance > 1 quantifies the idle time the paper criticizes;\n"
              "the row-partitioned shrinking solver has no such stage. Accuracies agree\n"
              "(both solve the same dual to the same tolerance).\n");
  return 0;
}
