// Table II: the full 13-heuristic sweep (Original + {Single,Multi} x
// {random 2/500/1000, numsamples 5/10/50%}), each annotated with its
// aggressiveness class. The paper defines the heuristics here and reports
// best/worst per dataset in §V; this bench runs all of them on one mid-size
// workload and reports work, shrink activity and accuracy parity.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner("Table II - shrinking heuristics sweep",
                         "13 heuristics; classes: aggressive (random 2/500, numsamples 5%), "
                         "average (random 1000, numsamples 10%), conservative (numsamples 50%)");

  const auto& entry = svmdata::zoo_entry("forest");
  const auto train = svmdata::make_train(entry, 0.3 * args.scale);
  const auto params = svmbench::params_for(entry, args.eps);
  const int ranks = args.ranks.empty() ? 4 : args.ranks.front();

  std::printf("workload: forest-like n=%zu d=%zu, C=%g sigma^2=%g, p=%d\n\n", train.size(),
              train.dim(), entry.C, entry.sigma_sq, ranks);

  svmutil::TextTable table({"#", "heuristic", "class", "recon", "iters", "shrunk",
                            "work/rank (kevals)", "wall s", "train acc %"});
  int row_number = 1;
  for (const auto& heuristic : svmcore::Heuristic::table2()) {
    svmcore::TrainOptions options;
    options.num_ranks = ranks;
    options.heuristic = heuristic;
    const auto result = svmcore::train(train, params, options);
    table.add_row(
        {svmutil::TextTable::integer(row_number++), heuristic.name(),
         to_string(heuristic.shrink_class()),
         heuristic.shrinking_enabled() ? (heuristic.multi_reconstruction ? "Multi" : "Single")
                                       : "N/A",
         svmutil::TextTable::integer(result.iterations),
         svmutil::TextTable::integer(result.samples_shrunk),
         svmutil::TextTable::integer(
             static_cast<long long>(result.max_rank_kernel_evaluations / 1000)),
         svmutil::TextTable::num(result.wall_seconds, 2),
         svmutil::TextTable::num(100.0 * result.model.accuracy(train), 2)});
  }
  table.print();
  std::printf("\nall heuristics must land on the same accuracy (the paper's central claim);\n"
              "work and wall time differ by shrink timing and reconstruction count.\n");
  return 0;
}
