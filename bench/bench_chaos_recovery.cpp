// Chaos bench: hammers the fault-tolerant training path with seeded fault
// schedules and reports recovery behavior — restarts taken, epochs resumed
// from, checkpoint overhead and model agreement with a fault-free run. Each
// seed is a fully deterministic schedule, so a reported row is replayable.
//
// Usage: bench_chaos_recovery [--seeds=N] [--ranks=P] [--scale=S]
//                             [--interval=I] [--drops=D] [--delays=L]
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/distributed_solver.hpp"
#include "data/synthetic.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(
      argc, argv, {"seeds", "ranks", "scale", "interval", "drops", "delays", "quick!"});
  const int seeds = static_cast<int>(flags.get_int("seeds", 5));
  const int ranks = static_cast<int>(flags.get_int("ranks", 4));
  const double scale = flags.get_double("scale", flags.get_bool("quick") ? 0.5 : 1.0);
  const std::uint64_t interval = static_cast<std::uint64_t>(flags.get_int("interval", 64));
  const int drops = static_cast<int>(flags.get_int("drops", 2));
  const int delays = static_cast<int>(flags.get_int("delays", 3));

  svmbench::print_banner(
      "chaos recovery - fault-injected training with checkpoint/restart",
      "each seed: " + std::to_string(drops) + " dropped sends, " + std::to_string(delays) +
          " delays and one rank crash; recovery must reproduce the fault-free model");

  const svmdata::Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = static_cast<std::size_t>(240 * scale), .d = 8, .separation = 1.6,
       .label_noise = 0.05, .seed = 17});
  svmcore::SolverParams params;
  params.C = 4.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(4.0);

  svmcore::TrainOptions options;
  options.num_ranks = ranks;
  options.heuristic = svmcore::Heuristic::best();
  options.net_model.timeout_s = 0.25;  // dropped messages become TimeoutError

  svmutil::Timer baseline_timer;
  const svmcore::TrainResult baseline = svmcore::train(train, params, options);
  const double baseline_s = baseline_timer.seconds();
  std::printf("fault-free: n=%zu p=%d iters=%llu wall=%.2fs\n\n", train.size(), ranks,
              static_cast<unsigned long long>(baseline.iterations), baseline_s);

  // Rank-0 op count of a clean run bounds the op horizon for the schedules.
  std::uint64_t horizon = 0;
  {
    svmmpi::FaultInjector probe{svmmpi::FaultPlan{}};
    const svmcore::DistributedConfig config{params, options.heuristic};
    svmmpi::run_spmd(
        ranks,
        [&](svmmpi::Comm& comm) {
          svmcore::DistributedSolver solver(comm, train, config);
          (void)solver.solve();
        },
        options.net_model, nullptr, &probe);
    horizon = probe.ops(0);
  }

  svmutil::TextTable table({"seed", "faults", "restarts", "resume epochs", "ckpt saves",
                            "wall s", "overhead", "max |dalpha|", "match"});
  int mismatches = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    svmcore::RecoveryOptions recovery;
    recovery.fault_plan = svmmpi::FaultPlan::chaos(static_cast<std::uint64_t>(seed), ranks,
                                                   horizon, drops, delays, /*with_crash=*/false)
                              .crash(seed % ranks, horizon / 2);
    recovery.checkpoint_interval = interval;
    svmcore::RecoveryReport report;

    svmutil::Timer timer;
    const svmcore::TrainResult recovered =
        svmcore::train_with_recovery(train, params, options, recovery, &report);
    const double wall = timer.seconds();

    double max_delta = 0.0;
    bool same_shape =
        recovered.model.num_support_vectors() == baseline.model.num_support_vectors();
    if (same_shape) {
      for (std::size_t j = 0; j < baseline.model.num_support_vectors(); ++j)
        max_delta = std::max(max_delta, std::abs(recovered.model.coefficients()[j] -
                                                 baseline.model.coefficients()[j]));
      max_delta = std::max(max_delta, std::abs(recovered.beta - baseline.beta));
    }
    const bool match = same_shape && max_delta <= 1e-10;
    if (!match) ++mismatches;

    std::string epochs;
    for (const std::uint64_t e : report.restore_epochs)
      epochs += (epochs.empty() ? "" : ",") + std::to_string(e);
    table.add_row({svmutil::TextTable::integer(seed),
                   svmutil::TextTable::integer(
                       static_cast<long long>(recovery.fault_plan.events().size())),
                   svmutil::TextTable::integer(report.restarts), epochs.empty() ? "-" : epochs,
                   svmutil::TextTable::integer(static_cast<long long>(report.checkpoints_saved)),
                   svmutil::TextTable::num(wall, 2),
                   svmutil::TextTable::num(baseline_s > 0 ? wall / baseline_s : 0.0, 2),
                   svmutil::TextTable::num(max_delta, 12), match ? "OK" : "MISMATCH"});
  }
  table.print();
  std::printf("\n%d/%d seeds reproduced the fault-free model within 1e-10\n", seeds - mismatches,
              seeds);
  return mismatches == 0 ? 0 : 1;
}
