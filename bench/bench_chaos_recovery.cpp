// Chaos bench: hammers the fault-tolerant training path with seeded fault
// schedules and reports recovery behavior — restarts taken, epochs resumed
// from, checkpoint overhead and model agreement with a fault-free run. Each
// seed is a fully deterministic schedule, so a reported row is replayable.
// A second section compares the recovery policies on an identical permanent
// rank death at p=4 and p=8 — restart_world (cold relaunch, from-scratch
// replay on a memory-only store) vs shrink_world (in-world repartition onto
// the survivors from the buddy replica) — and emits BENCH_recovery.json.
//
// Usage: bench_chaos_recovery [--seeds=N] [--ranks=P] [--scale=S]
//                             [--interval=I] [--drops=D] [--delays=L]
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "core/distributed_solver.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"
#include "util/table.hpp"

namespace {

/// One policy × rank-count recovery run on the shared death schedule.
struct PolicyRow {
  int ranks = 0;
  std::string policy;
  int restarts = 0;
  int shrinks = 0;
  std::uint64_t restore_epoch = 0;
  std::uint64_t iterations_replayed = 0;
  double wall_s = 0.0;
  double modeled_s = 0.0;
  double max_delta = 0.0;
  bool match = false;
};

double model_max_delta(const svmcore::TrainResult& a, const svmcore::TrainResult& b) {
  if (a.model.num_support_vectors() != b.model.num_support_vectors())
    return std::numeric_limits<double>::infinity();
  double max_delta = std::abs(a.beta - b.beta);
  for (std::size_t j = 0; j < a.model.num_support_vectors(); ++j)
    max_delta =
        std::max(max_delta, std::abs(a.model.coefficients()[j] - b.model.coefficients()[j]));
  return max_delta;
}

void write_json(const std::vector<PolicyRow>& rows, bool shrink_fewer, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"chaos_recovery\",\n  \"policy_comparison\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PolicyRow& r = rows[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"ranks\": %d,\n"
                 "      \"policy\": \"%s\",\n"
                 "      \"restarts\": %d,\n"
                 "      \"shrinks\": %d,\n"
                 "      \"restore_epoch\": %" PRIu64 ",\n"
                 "      \"iterations_replayed\": %" PRIu64 ",\n"
                 "      \"wall_s\": %.4f,\n"
                 "      \"modeled_network_s\": %.6f,\n"
                 "      \"max_coef_delta\": %.3e,\n"
                 "      \"matches_fault_free\": %s\n"
                 "    }%s\n",
                 r.ranks, r.policy.c_str(), r.restarts, r.shrinks, r.restore_epoch,
                 r.iterations_replayed, r.wall_s, r.modeled_s, r.max_delta,
                 r.match ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"shrink_replays_fewer_iterations\": %s\n}\n",
               shrink_fewer ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto [flags, args] =
      svmbench::parse_args_with(argc, argv, {"seeds", "interval", "drops", "delays"});
  const int seeds = static_cast<int>(flags.get_int("seeds", 5));
  const int ranks = args.ranks.empty() ? 4 : args.ranks.front();
  const double scale = flags.get_double("scale", args.quick ? 0.5 : 1.0);
  const std::uint64_t interval = static_cast<std::uint64_t>(flags.get_int("interval", 64));
  const int drops = static_cast<int>(flags.get_int("drops", 2));
  const int delays = static_cast<int>(flags.get_int("delays", 3));

  svmbench::print_banner(
      "chaos recovery - fault-injected training with checkpoint/restart",
      "each seed: " + std::to_string(drops) + " dropped sends, " + std::to_string(delays) +
          " delays and one rank crash; recovery must reproduce the fault-free model");

  const svmdata::Dataset train = svmdata::synthetic::gaussian_blobs(
      {.n = static_cast<std::size_t>(240 * scale), .d = 8, .separation = 1.6,
       .label_noise = 0.05, .seed = 17});
  svmcore::SolverParams params;
  params.C = 4.0;
  params.eps = 1e-3;
  params.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(4.0);

  svmcore::TrainOptions options;
  options.num_ranks = ranks;
  options.heuristic = svmcore::Heuristic::best();
  options.net_model.timeout_s = 0.25;  // dropped messages become TimeoutError

  svmutil::Timer baseline_timer;
  const svmcore::TrainResult baseline = svmcore::train(train, params, options);
  const double baseline_s = baseline_timer.seconds();
  std::printf("fault-free: n=%zu p=%d iters=%llu wall=%.2fs\n\n", train.size(), ranks,
              static_cast<unsigned long long>(baseline.iterations), baseline_s);

  // Rank-0 op count of a clean run bounds the op horizon for the schedules.
  std::uint64_t horizon = 0;
  {
    svmmpi::FaultInjector probe{svmmpi::FaultPlan{}};
    const svmcore::DistributedConfig config{params, options.heuristic};
    svmmpi::run_spmd(
        ranks,
        [&](svmmpi::Comm& comm) {
          svmcore::DistributedSolver solver(comm, train, config);
          (void)solver.solve();
        },
        options.net_model, nullptr, &probe);
    horizon = probe.ops(0);
  }

  svmutil::TextTable table({"seed", "faults", "restarts", "resume epochs", "ckpt saves",
                            "wall s", "overhead", "max |dalpha|", "match"});
  int mismatches = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    svmcore::RecoveryOptions recovery;
    recovery.fault_plan = svmmpi::FaultPlan::chaos(static_cast<std::uint64_t>(seed), ranks,
                                                   horizon, drops, delays, /*with_crash=*/false)
                              .crash(seed % ranks, horizon / 2);
    recovery.checkpoint_interval = interval;
    svmcore::RecoveryReport report;

    svmutil::Timer timer;
    const svmcore::TrainResult recovered =
        svmcore::train_with_recovery(train, params, options, recovery, &report);
    const double wall = timer.seconds();

    double max_delta = 0.0;
    bool same_shape =
        recovered.model.num_support_vectors() == baseline.model.num_support_vectors();
    if (same_shape) {
      for (std::size_t j = 0; j < baseline.model.num_support_vectors(); ++j)
        max_delta = std::max(max_delta, std::abs(recovered.model.coefficients()[j] -
                                                 baseline.model.coefficients()[j]));
      max_delta = std::max(max_delta, std::abs(recovered.beta - baseline.beta));
    }
    const bool match = same_shape && max_delta <= 1e-10;
    if (!match) ++mismatches;

    std::string epochs;
    for (const std::uint64_t e : report.restore_epochs)
      epochs += (epochs.empty() ? "" : ",") + std::to_string(e);
    table.add_row({svmutil::TextTable::integer(seed),
                   svmutil::TextTable::integer(
                       static_cast<long long>(recovery.fault_plan.events().size())),
                   svmutil::TextTable::integer(report.restarts), epochs.empty() ? "-" : epochs,
                   svmutil::TextTable::integer(static_cast<long long>(report.checkpoints_saved)),
                   svmutil::TextTable::num(wall, 2),
                   svmutil::TextTable::num(baseline_s > 0 ? wall / baseline_s : 0.0, 2),
                   svmutil::TextTable::num(max_delta, 12), match ? "OK" : "MISMATCH"});
  }
  table.print();
  std::printf("\n%d/%d seeds reproduced the fault-free model within 1e-10\n", seeds - mismatches,
              seeds);

  // --- restart_world vs shrink_world on an identical permanent death -------
  std::printf("\npolicy comparison: permanent death of rank 1 mid-solve, memory-only store\n");
  std::vector<PolicyRow> rows;
  bool shrink_fewer = true;
  svmutil::TextTable policy_table({"p", "policy", "restarts", "shrinks", "resume epoch",
                                   "iters replayed", "wall s", "modeled s", "max |dalpha|",
                                   "match"});
  for (const int p : {4, 8}) {
    svmcore::TrainOptions elastic_options = options;
    elastic_options.num_ranks = p;
    elastic_options.net_model.timeout_s = 5.0;  // shrink needs a failure detector

    const svmcore::TrainResult p_baseline = svmcore::train(train, params, elastic_options);
    std::uint64_t victim_ops = 0;
    {
      svmmpi::FaultInjector probe{svmmpi::FaultPlan{}};
      const svmcore::DistributedConfig config{params, elastic_options.heuristic};
      svmmpi::run_spmd(
          p,
          [&](svmmpi::Comm& comm) {
            svmcore::DistributedSolver solver(comm, train, config);
            (void)solver.solve();
          },
          elastic_options.net_model, nullptr, &probe);
      victim_ops = probe.ops(1);
    }

    std::uint64_t replayed_by_policy[2] = {0, 0};
    const svmcore::RecoveryPolicy policies[2] = {svmcore::RecoveryPolicy::restart_world,
                                                 svmcore::RecoveryPolicy::shrink_world};
    const char* names[2] = {"restart_world", "shrink_world"};
    for (int i = 0; i < 2; ++i) {
      svmcore::RecoveryOptions recovery;
      recovery.fault_plan = svmmpi::FaultPlan{}.die(1, victim_ops / 2);
      recovery.checkpoint_interval = interval;
      recovery.policy = policies[i];
      svmcore::RecoveryReport report;

      svmutil::Timer timer;
      const svmcore::TrainResult recovered =
          svmcore::train_with_recovery(train, params, elastic_options, recovery, &report);

      PolicyRow row;
      row.ranks = p;
      row.policy = names[i];
      row.restarts = report.restarts;
      row.shrinks = report.shrinks;
      row.restore_epoch = report.restore_epochs.empty() ? 0 : report.restore_epochs.front();
      row.iterations_replayed = report.iterations_replayed;
      row.wall_s = timer.seconds();
      row.modeled_s = recovered.modeled_seconds;
      row.max_delta = model_max_delta(recovered, p_baseline);
      row.match = row.max_delta <= 1e-10;
      if (!row.match) ++mismatches;
      replayed_by_policy[i] = report.iterations_replayed;
      rows.push_back(row);

      policy_table.add_row(
          {svmutil::TextTable::integer(p), row.policy, svmutil::TextTable::integer(row.restarts),
           svmutil::TextTable::integer(row.shrinks),
           svmutil::TextTable::integer(static_cast<long long>(row.restore_epoch)),
           svmutil::TextTable::integer(static_cast<long long>(row.iterations_replayed)),
           svmutil::TextTable::num(row.wall_s, 2), svmutil::TextTable::num(row.modeled_s, 4),
           svmutil::TextTable::num(row.max_delta, 12), row.match ? "OK" : "MISMATCH"});
    }
    if (replayed_by_policy[1] >= replayed_by_policy[0]) shrink_fewer = false;
  }
  policy_table.print();
  std::printf("\nshrink_world replays strictly fewer iterations than restart_world: %s\n",
              shrink_fewer ? "yes" : "NO");
  write_json(rows, shrink_fewer, "BENCH_recovery.json");

  return (mismatches == 0 && shrink_fewer) ? 0 : 1;
}
