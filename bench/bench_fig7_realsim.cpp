// Figure 7: real-sim scaling. Paper: 72K samples, up to 256 processes; 6.6x
// at 16 nodes; 47K iterations; after the first gradient reconstruction fewer
// than 10% of the samples remain active; first shrink at 36K iterations for
// Single50pc loses most of the benefit.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  const int status = svmbench::run_figure_bench(
      "Figure 7", "realsim", /*scale_hint=*/0.4, {1, 2, 4, 8},
      "6.6x vs libsvm-enhanced at 256 procs; <10% of samples active after first "
      "reconstruction; Multi5pc best / Single50pc worst",
      args);

  // Verify the "<10% active" claim's analogue: after Multi5pc training, the
  // final active fraction should be well below one.
  const auto& entry = svmdata::zoo_entry("realsim");
  const auto train = svmdata::make_train(entry, 0.4 * args.scale);
  svmcore::TrainOptions options;
  options.num_ranks = 4;
  options.heuristic = svmcore::Heuristic::best();
  const auto result = svmcore::train(train, svmbench::params_for(entry, args.eps), options);
  // After the final reconstruction everything is re-activated, so the
  // paper's "<10% active" claim maps to the minimum active-set size reached
  // during training (just before a reconstruction).
  std::size_t min_active = 0;
  for (const auto& s : result.rank_stats) min_active += s.min_active;
  std::printf("smallest active set during training: %zu / %zu (%.1f%%)\n", min_active,
              train.size(),
              100.0 * static_cast<double>(min_active) / static_cast<double>(train.size()));
  return status;
}
