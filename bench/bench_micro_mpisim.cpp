// Microbenchmarks (google-benchmark) for the message-passing substrate: the
// per-operation costs behind §III's complexity analysis — pt2pt latency,
// bcast and allreduce vs rank count, ring exchange vs payload — plus the
// alpha-beta model's predictions for the same operations at paper scale.
// With --assert-obs-overhead the binary instead runs the tracing-overhead
// guard: an SMO-shaped gamma-update hot loop with the solver's per-iteration
// trace calls compiled in but the recorder DISABLED must run within 2% of
// the same loop with no trace calls at all (each disabled call is one
// relaxed atomic load). Exits non-zero on violation; used by check.sh --obs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpisim/spmd.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

/// Best-of-`reps` wall seconds for each of two loop bodies, interleaved
/// A/B/A/B so scheduler noise and frequency drift hit both variants alike;
/// the minimum is the least-perturbed run of each.
template <typename A, typename B>
std::pair<double, double> interleaved_min_seconds(int reps, A&& a, B&& b) {
  double min_a = 1e300;
  double min_b = 1e300;
  for (int r = 0; r < reps; ++r) {
    svmutil::Timer ta;
    a();
    min_a = std::min(min_a, ta.seconds());
    svmutil::Timer tb;
    b();
    min_b = std::min(min_b, tb.seconds());
  }
  return {min_a, min_b};
}

/// One SMO-iteration-shaped gamma update over the active block. noinline so
/// the plain and traced guard loops call the identical code: without it the
/// out-of-line emit() branch acts as a compiler barrier in the traced loop
/// and the comparison measures codegen differences, not the trace calls.
__attribute__((noinline)) void smo_gamma_update(std::vector<double>& gamma,
                                                const std::vector<double>& k_up,
                                                const std::vector<double>& k_low,
                                                std::uint64_t it) {
  const double du = 1e-4 * static_cast<double>(it % 7);
  const double dl = -1e-4 * static_cast<double>(it % 5);
  for (std::size_t i = 0; i < gamma.size(); ++i) gamma[i] += du * k_up[i] + dl * k_low[i];
  benchmark::DoNotOptimize(gamma.data());
}

int run_obs_overhead_guard() {
  // The shape of DistributedSolver::run_phase's inner loop: one gamma update
  // over the active block per iteration, plus the solver's trace call sites
  // (batch-boundary check, gap counter, span begin/end) — all no-ops here
  // because the recorder stays disabled.
  constexpr std::size_t kBlock = 2048;
  constexpr int kIters = 6000;
  constexpr int kReps = 21;
  std::vector<double> gamma(kBlock, 0.1);
  std::vector<double> k_up(kBlock);
  std::vector<double> k_low(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    k_up[i] = 1.0 / static_cast<double>(i + 1);
    k_low[i] = 1.0 / static_cast<double>(kBlock - i);
  }

  svmobs::trace_disable();
  const auto [plain_s, traced_s] = interleaved_min_seconds(
      kReps,
      [&] {
        for (std::uint64_t it = 0; it < kIters; ++it) smo_gamma_update(gamma, k_up, k_low, it);
      },
      [&] {
        for (std::uint64_t it = 0; it < kIters; ++it) {
          if (svmobs::trace_enabled() && it % 256 == 0)
            svmobs::trace_begin("smo_batch", "solver");
          smo_gamma_update(gamma, k_up, k_low, it);
          svmobs::trace_counter("gap", k_up[it % kBlock]);
          svmobs::trace_counter("active_local", static_cast<double>(kBlock));
        }
      });

  const double overhead = traced_s / plain_s - 1.0;
  std::printf("obs overhead guard: plain %.4fs, traced-disabled %.4fs, overhead %+.2f%% "
              "(budget 2%%): %s\n",
              plain_s, traced_s, 100.0 * overhead, overhead < 0.02 ? "OK" : "VIOLATED");
  return overhead < 0.02 ? 0 : 1;
}

void BM_Pt2PtRoundTrip(benchmark::State& state) {
  const std::size_t doubles = state.range(0);
  for (auto _ : state) {
    svmmpi::run_spmd(2, [doubles](svmmpi::Comm& comm) {
      std::vector<double> payload(doubles, 1.0);
      if (comm.rank() == 0) {
        comm.send<double>(payload, 1);
        benchmark::DoNotOptimize(comm.recv<double>(1));
      } else {
        auto got = comm.recv<double>(0);
        comm.send<double>(got, 0);
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * doubles * 16);
}
BENCHMARK(BM_Pt2PtRoundTrip)->Arg(8)->Arg(1024)->Arg(65536);

void BM_AllreduceScalar(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    svmmpi::run_spmd(ranks, [](svmmpi::Comm& comm) {
      for (int i = 0; i < 64; ++i)
        benchmark::DoNotOptimize(comm.allreduce(1.0, svmmpi::ReduceOp::sum));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_AllreduceScalar)->Arg(2)->Arg(4)->Arg(8);

void BM_MinlocPair(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    svmmpi::run_spmd(ranks, [](svmmpi::Comm& comm) {
      for (int i = 0; i < 64; ++i) {
        const svmmpi::DoubleInt mine{static_cast<double>(comm.rank()), comm.rank()};
        benchmark::DoNotOptimize(comm.allreduce_minloc(mine));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_MinlocPair)->Arg(2)->Arg(8);

void BM_Bcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    svmmpi::run_spmd(ranks, [](svmmpi::Comm& comm) {
      std::vector<double> payload(1024);
      for (int i = 0; i < 16; ++i) comm.bcast(payload, 0);
    });
  }
}
BENCHMARK(BM_Bcast)->Arg(2)->Arg(4)->Arg(8);

void BM_RingExchange(benchmark::State& state) {
  const int ranks = 4;
  const std::size_t doubles = state.range(0);
  for (auto _ : state) {
    svmmpi::run_spmd(ranks, [doubles](svmmpi::Comm& comm) {
      std::vector<double> block(doubles, 1.0);
      const int to = (comm.rank() + 1) % ranks;
      const int from = (comm.rank() - 1 + ranks) % ranks;
      for (int step = 0; step < ranks - 1; ++step)
        block = comm.sendrecv<double>(block, to, from);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * doubles * 8 *
                          (ranks - 1) * ranks);
}
BENCHMARK(BM_RingExchange)->Arg(1024)->Arg(32768);

}  // namespace

int main(int argc, char** argv) {
  // The overhead guard replaces the benchmark run; strip the flag before
  // benchmark::Initialize (which rejects flags it does not know).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-obs-overhead") == 0) return run_obs_overhead_guard();
  }

  // Before the microbenchmarks, print the alpha-beta model's predictions for
  // the paper-scale operations analysed in §III (p=4096, InfiniBand FDR).
  const svmmpi::NetModel model;
  svmutil::TextTable table({"operation", "payload", "p", "modeled time"});
  const auto row = [&](const char* op, const char* payload, int p, double seconds) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f us", seconds * 1e6);
    table.add_row({op, payload, svmutil::TextTable::integer(p), buffer});
  };
  row("pt2pt (x_up to rank0)", "1 sample ~ 1KB", 2, model.pt2pt(1024));
  row("bcast (x_up/x_low)", "1 sample ~ 1KB", 4096, model.tree(1024, 4096));
  row("allreduce (beta)", "16 B", 4096, model.tree(16, 4096));
  row("ring step (Algorithm 3)", "N/p samples ~ 5MB", 4096, model.ring_step(5 << 20));
  std::printf("alpha-beta model predictions at paper scale (l=%.1e s, G=%.1e s/B):\n\n",
              model.latency_s, model.seconds_per_byte);
  table.print();
  std::printf("\n");

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
