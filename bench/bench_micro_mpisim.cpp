// Microbenchmarks (google-benchmark) for the message-passing substrate: the
// per-operation costs behind §III's complexity analysis — pt2pt latency,
// bcast and allreduce vs rank count, ring exchange vs payload — plus the
// alpha-beta model's predictions for the same operations at paper scale.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpisim/spmd.hpp"
#include "util/table.hpp"

namespace {

void BM_Pt2PtRoundTrip(benchmark::State& state) {
  const std::size_t doubles = state.range(0);
  for (auto _ : state) {
    svmmpi::run_spmd(2, [doubles](svmmpi::Comm& comm) {
      std::vector<double> payload(doubles, 1.0);
      if (comm.rank() == 0) {
        comm.send<double>(payload, 1);
        benchmark::DoNotOptimize(comm.recv<double>(1));
      } else {
        auto got = comm.recv<double>(0);
        comm.send<double>(got, 0);
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * doubles * 16);
}
BENCHMARK(BM_Pt2PtRoundTrip)->Arg(8)->Arg(1024)->Arg(65536);

void BM_AllreduceScalar(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    svmmpi::run_spmd(ranks, [](svmmpi::Comm& comm) {
      for (int i = 0; i < 64; ++i)
        benchmark::DoNotOptimize(comm.allreduce(1.0, svmmpi::ReduceOp::sum));
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_AllreduceScalar)->Arg(2)->Arg(4)->Arg(8);

void BM_MinlocPair(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    svmmpi::run_spmd(ranks, [](svmmpi::Comm& comm) {
      for (int i = 0; i < 64; ++i) {
        const svmmpi::DoubleInt mine{static_cast<double>(comm.rank()), comm.rank()};
        benchmark::DoNotOptimize(comm.allreduce_minloc(mine));
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_MinlocPair)->Arg(2)->Arg(8);

void BM_Bcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    svmmpi::run_spmd(ranks, [](svmmpi::Comm& comm) {
      std::vector<double> payload(1024);
      for (int i = 0; i < 16; ++i) comm.bcast(payload, 0);
    });
  }
}
BENCHMARK(BM_Bcast)->Arg(2)->Arg(4)->Arg(8);

void BM_RingExchange(benchmark::State& state) {
  const int ranks = 4;
  const std::size_t doubles = state.range(0);
  for (auto _ : state) {
    svmmpi::run_spmd(ranks, [doubles](svmmpi::Comm& comm) {
      std::vector<double> block(doubles, 1.0);
      const int to = (comm.rank() + 1) % ranks;
      const int from = (comm.rank() - 1 + ranks) % ranks;
      for (int step = 0; step < ranks - 1; ++step)
        block = comm.sendrecv<double>(block, to, from);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * doubles * 8 *
                          (ranks - 1) * ranks);
}
BENCHMARK(BM_RingExchange)->Arg(1024)->Arg(32768);

}  // namespace

int main(int argc, char** argv) {
  // Before the microbenchmarks, print the alpha-beta model's predictions for
  // the paper-scale operations analysed in §III (p=4096, InfiniBand FDR).
  const svmmpi::NetModel model;
  svmutil::TextTable table({"operation", "payload", "p", "modeled time"});
  const auto row = [&](const char* op, const char* payload, int p, double seconds) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f us", seconds * 1e6);
    table.add_row({op, payload, svmutil::TextTable::integer(p), buffer});
  };
  row("pt2pt (x_up to rank0)", "1 sample ~ 1KB", 2, model.pt2pt(1024));
  row("bcast (x_up/x_low)", "1 sample ~ 1KB", 4096, model.tree(1024, 4096));
  row("allreduce (beta)", "16 B", 4096, model.tree(16, 4096));
  row("ring step (Algorithm 3)", "N/p samples ~ 5MB", 4096, model.ring_step(5 << 20));
  std::printf("alpha-beta model predictions at paper scale (l=%.1e s, G=%.1e s/B):\n\n",
              model.latency_s, model.seconds_per_byte);
  table.print();
  std::printf("\n");

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
