// Table V: testing accuracy — the proposed (shrinking) solver vs libsvm on
// every dataset with a test set. Paper values (ours / libsvm, %):
//   Adult-9 85.18/83.12, USPS 97.6/97.75, MNIST 98.9/98.62,
//   Cod-RNA 92.33/92.1, Web(w7a) 98.82/98.9.
// The property under test is parity: shrinking plus gradient reconstruction
// must not change the classifier.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner("Table V - testing accuracy parity",
                         "ours vs libsvm: 85.18/83.12 (a9a), 97.6/97.75 (usps), 98.9/98.62 "
                         "(mnist), 92.33/92.1 (codrna), 98.82/98.9 (w7a)");

  const struct {
    const char* dataset;
    double paper_ours, paper_libsvm;
  } rows[] = {{"a9a", 85.18, 83.12},
              {"usps", 97.6, 97.75},
              {"mnist", 98.9, 98.62},
              {"codrna", 92.33, 92.1},
              {"w7a", 98.82, 98.9}};

  svmutil::TextTable table({"dataset", "ours %", "libsvm-style %", "delta", "paper ours/libsvm"});
  for (const auto& row : rows) {
    const auto& entry = svmdata::zoo_entry(row.dataset);
    const auto train = svmdata::make_train(entry, 0.5 * args.scale);
    const auto test = svmdata::make_test(entry, 0.5 * args.scale);

    svmcore::TrainOptions options;
    options.num_ranks = 4;
    options.heuristic = svmcore::Heuristic::best();
    const auto ours = svmcore::train(train, svmbench::params_for(entry, args.eps), options);
    const double acc_ours = 100.0 * ours.model.accuracy(test);

    const auto baseline = svmbench::run_baseline(train, entry, args.eps);
    const auto baseline_model = svmcore::build_model(
        train, baseline.alpha, baseline.rho,
        svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq));
    const double acc_baseline = 100.0 * baseline_model.accuracy(test);

    char paper[32];
    std::snprintf(paper, sizeof(paper), "%.2f / %.2f", row.paper_ours, row.paper_libsvm);
    table.add_row({row.dataset, svmutil::TextTable::num(acc_ours, 2),
                   svmutil::TextTable::num(acc_baseline, 2),
                   svmutil::TextTable::num(acc_ours - acc_baseline, 2), paper});
  }
  table.print();
  std::printf("\nparity (|delta| small) is the property the paper claims; absolute values\n"
              "depend on the synthetic workloads, not the paper's real datasets.\n");
  return 0;
}
