// Active-set trajectory (§V-D.4): "We observed that for 75% of the
// iterations, the active set is a fraction of the overall number of samples
// (20%)" — MNIST — and §V-D.5: after real-sim's first reconstruction "less
// than 10% of the samples are actually active". This bench records the
// global active-set size over iterations (Multi5pc) and reports the
// fraction-of-iterations-below-threshold statistics behind those claims.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner("Active-set trajectory (SV-D.4 / SV-D.5)",
                         "paper: MNIST active set ~20% of samples for 75% of iterations; "
                         "real-sim <10% active after first reconstruction");

  // With --trace-out the sampled active-set sizes also appear as the
  // "active_set" counter track on the Chrome trace timeline; --metrics-out
  // writes one run report per dataset.
  if (!args.trace_out.empty()) {
    svmobs::trace_reset();
    svmobs::trace_enable();
  }
  std::vector<svmobs::RunReport> reports;

  svmutil::TextTable table({"dataset", "iters", "min active %", "median active %",
                            "% of iters below 50% active", "% below 25% active"});
  for (const char* name : {"mnist", "realsim", "forest", "higgs"}) {
    const auto& entry = svmdata::zoo_entry(name);
    const auto train = svmdata::make_train(entry, 0.4 * args.scale);
    svmcore::TrainOptions options;
    options.num_ranks = 4;
    options.heuristic = svmcore::Heuristic::best();
    options.trace_active_interval = 25;
    const auto result = svmcore::train(train, svmbench::params_for(entry, args.eps), options);
    if (!args.metrics_out.empty()) reports.push_back(svmcore::run_report(result, options, name));

    const double n = static_cast<double>(train.size());
    std::vector<double> fractions;
    for (const auto& [iteration, active] : result.active_trace)
      fractions.push_back(static_cast<double>(active) / n);
    if (fractions.empty()) fractions.push_back(1.0);

    const auto summary = svmutil::summarize(fractions);
    std::size_t below_half = 0;
    std::size_t below_quarter = 0;
    for (const double f : fractions) {
      if (f < 0.5) ++below_half;
      if (f < 0.25) ++below_quarter;
    }
    const double total = static_cast<double>(fractions.size());
    table.add_row({name, svmutil::TextTable::integer(result.iterations),
                   svmutil::TextTable::num(100.0 * summary.min, 1),
                   svmutil::TextTable::num(100.0 * summary.median, 1),
                   svmutil::TextTable::num(100.0 * below_half / total, 1),
                   svmutil::TextTable::num(100.0 * below_quarter / total, 1)});
  }
  if (!args.trace_out.empty()) {
    svmobs::trace_disable();
    svmobs::trace_write(args.trace_out);
    std::printf("trace -> %s\n", args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    svmobs::write_reports(args.metrics_out, reports);
    std::printf("metrics -> %s\n", args.metrics_out.c_str());
  }
  table.print();
  std::printf("\nthe paper's regime (iters >> n) pushes 'min active' toward the SV fraction\n"
              "and the below-threshold columns toward 75%%+; at container scale (iters ~ n)\n"
              "the trajectory is shorter but its instrumentation is identical.\n");
  return 0;
}
