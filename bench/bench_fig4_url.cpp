// Figure 4: Offending URL scaling. Paper: 2.3M samples; libsvm-enhanced
// takes 39 hours on 16 cores while Shrink(Best) on 4096 processes takes
// 8 minutes (~250x); Default takes 13 minutes; Multi5pc best, Single50pc
// worst.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  return svmbench::run_figure_bench(
      "Figure 4", "url", /*scale_hint=*/0.75, {1, 2, 4, 8},
      "~250x vs libsvm-enhanced at 4096 procs; Shrink(Best) 8 min vs Default 13 min; "
      "Multi5pc best / Single50pc worst",
      args);
}
