// PBM bench: shrinking-SMO vs Parallel Block Minimization on the dataset
// zoo, under the alpha-beta network model. For each dataset x rank count the
// two solvers run to the SAME eps, and the row reports per-solver injected
// communication volume (sum over ranks of bytes_sent + per-rank collective
// contributions), outer rounds / iterations, modeled alpha-beta time and the
// exact KKT gap recomputed from the stitched alpha — plus the cross-solver
// comm_speedup (SMO bytes / PBM bytes), time_speedup and support-vector
// agreement (Jaccard over the SV index sets). Emits BENCH_pbm.json for the
// bench_diff gate.
//
// The contract (exit status, strict under --assert):
//   - every run converges, with the recomputed KKT gap <= 2*eps (+ slack)
//     and a feasible alpha — "to the same optimality gap" is checked, not
//     assumed;
//   - PBM's whole-round synchronization pays off where the paper says it
//     does: at p >= 8, PBM moves >= 2x fewer bytes than SMO on at least two
//     zoo datasets;
//   - the two solvers describe the same model: SV-set Jaccard agreement
//     >= 0.8 on every configuration.
//
// Usage: bench_pbm [--assert] [--quick] [--scale=S] [--ranks=2,4,8,16]
//                  [--datasets=a,b,c] [--eps=E] [--trace-out=T]
//                  [--metrics-out=M]
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/objective.hpp"
#include "core/trainer.hpp"
#include "data/zoo.hpp"

namespace {

/// One solver's run on one dataset x rank-count configuration.
struct SolverCell {
  std::uint64_t rounds = 0;      ///< PBM outer rounds / SMO global iterations
  std::uint64_t comm_bytes = 0;  ///< sum over ranks: bytes_sent + collective contributions
  double modeled_time_s = 0.0;   ///< max per-rank compute + alpha-beta network model
  double gap = 0.0;              ///< exact KKT gap recomputed from stitched alpha
  bool converged = false;
};

struct ConfigRow {
  std::string dataset;
  std::size_t n = 0;
  int ranks = 0;
  SolverCell smo;
  SolverCell pbm;
  double comm_speedup = 0.0;  ///< smo.comm_bytes / pbm.comm_bytes
  double time_speedup = 0.0;  ///< smo.modeled_time_s / pbm.modeled_time_s
  double sv_agreement = 0.0;  ///< Jaccard over the two SV index sets
};

[[nodiscard]] std::uint64_t comm_volume(const svmcore::TrainResult& result) {
  std::uint64_t bytes = 0;
  for (const svmmpi::TrafficStats& t : result.rank_traffic)
    bytes += t.bytes_sent + t.bytes_collective;
  return bytes;
}

/// Jaccard agreement of the SV index sets (alpha above a C-relative floor,
/// so near-zero numerical dust is not counted as a support vector).
[[nodiscard]] double sv_jaccard(const std::vector<double>& a, const std::vector<double>& b,
                                double C) {
  const double floor = 1e-8 * C;
  std::size_t both = 0;
  std::size_t either = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool in_a = a[i] > floor;
    const bool in_b = b[i] > floor;
    if (in_a && in_b) ++both;
    if (in_a || in_b) ++either;
  }
  return either == 0 ? 1.0 : static_cast<double>(both) / static_cast<double>(either);
}

[[nodiscard]] SolverCell cell_of(const svmcore::TrainResult& result,
                                 const svmcore::KktReport& kkt) {
  SolverCell cell;
  cell.rounds = result.iterations;
  cell.comm_bytes = comm_volume(result);
  cell.modeled_time_s = result.modeled_seconds;
  cell.gap = kkt.gap;
  cell.converged = result.converged;
  return cell;
}

void write_solver_json(std::FILE* f, const char* name, const SolverCell& c, const char* tail) {
  std::fprintf(f,
               "        \"%s\": {\n"
               "          \"rounds\": %" PRIu64 ",\n"
               "          \"comm_bytes\": %" PRIu64 ",\n"
               "          \"modeled_time_s\": %.6f,\n"
               "          \"gap\": %.3e,\n"
               "          \"converged\": %s\n"
               "        }%s\n",
               name, c.rounds, c.comm_bytes, c.modeled_time_s, c.gap,
               c.converged ? "true" : "false", tail);
}

void write_json(const std::vector<ConfigRow>& rows, double eps, int datasets_with_2x,
                const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"pbm\",\n  \"eps\": %.1e,\n  \"configs\": [\n", eps);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ConfigRow& r = rows[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"dataset\": \"%s\",\n"
                 "      \"n\": %zu,\n"
                 "      \"ranks\": %d,\n"
                 "      \"solvers\": {\n",
                 r.dataset.c_str(), r.n, r.ranks);
    write_solver_json(f, "smo", r.smo, ",");
    write_solver_json(f, "pbm", r.pbm, "");
    std::fprintf(f,
                 "      },\n"
                 "      \"comm_speedup\": %.3f,\n"
                 "      \"time_speedup\": %.3f,\n"
                 "      \"sv_agreement\": %.4f\n"
                 "    }%s\n",
                 r.comm_speedup, r.time_speedup, r.sv_agreement,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"datasets_with_2x_comm_reduction_at_p8\": %d\n}\n",
               datasets_with_2x);
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  auto [flags, args] = svmbench::parse_args_with(argc, argv, {"assert!", "datasets"});
  const bool strict = flags.get_bool("assert");
  // Every configuration runs BOTH solvers to convergence, so the sweep is
  // the most compute-heavy bench in the suite; half the container default
  // keeps the full 4-dataset x {2,4,8,16}-rank grid in minutes. --scale
  // still multiplies on top (and --quick quarters it as everywhere else).
  args.scale *= 0.5;

  std::vector<std::string> names;
  if (flags.has("datasets")) {
    std::string list = flags.get("datasets", "");
    std::size_t at = 0;
    while (at < list.size()) {
      const std::size_t comma = list.find(',', at);
      names.push_back(list.substr(at, comma - at));
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  } else {
    names = args.quick ? std::vector<std::string>{"higgs", "url"}
                       : std::vector<std::string>{"higgs", "url", "forest", "realsim"};
  }
  const std::vector<int> rank_list =
      !args.ranks.empty() ? args.ranks
                          : (args.quick ? std::vector<int>{2, 8} : std::vector<int>{2, 4, 8, 16});

  svmbench::print_banner(
      "pbm - parallel block minimization vs shrinking-SMO",
      "per-rank blocks re-solved with warm-started working-set SMO, one "
      "compressed delta sync per outer round; comm volume and modeled "
      "alpha-beta time to the same eps");

  bool ok = true;
  const auto gate = [&](bool pass, const std::string& what) {
    if (!pass) {
      std::printf("GATE %s: %s\n", strict ? "FAILED" : "failed (advisory)", what.c_str());
      ok = false;
    }
  };

  svmutil::TextTable table({"dataset", "n", "p", "solver", "rounds", "comm MB", "modeled s",
                            "gap", "comm x", "time x", "sv agree"});
  std::vector<ConfigRow> rows;
  int datasets_with_2x = 0;
  bool obs_attached = false;
  for (const std::string& name : names) {
    const svmdata::ZooEntry& entry = svmdata::zoo_entry(name);
    const svmdata::Dataset train = svmdata::make_train(entry, args.scale);
    const svmcore::SolverParams base = svmbench::params_for(entry, args);
    bool dataset_hit_2x = false;

    for (const int p : rank_list) {
      svmcore::TrainOptions options;
      options.num_ranks = p;
      options.heuristic = svmcore::Heuristic::best();

      svmcore::SolverParams smo_params = base;
      smo_params.algo = svmcore::SolverAlgo::smo;
      const svmcore::TrainResult smo = svmcore::train(train, smo_params, options);

      svmcore::SolverParams pbm_params = base;
      pbm_params.algo = svmcore::SolverAlgo::pbm;
      // Let the round's own census pick the wire format: late rounds move a
      // handful of alphas and go out as sparse (index, delta) pairs over the
      // pipelined ring, which is where the comm-volume win lives.
      pbm_params.pbm_delta = svmcore::PbmDeltaEncoding::auto_select;
      // The observability artifacts ride on the first p>=4 PBM run: one
      // representative trace with pbm_round/pbm_sync spans and one metrics
      // report with the pbm.* counters.
      if (!obs_attached && p >= 4) {
        options.trace_path = args.trace_out;
        options.metrics_path = args.metrics_out;
        obs_attached = true;
      }
      const svmcore::TrainResult pbm = svmcore::train(train, pbm_params, options);
      options.trace_path.clear();
      options.metrics_path.clear();

      ConfigRow row;
      row.dataset = entry.name;
      row.n = train.size();
      row.ranks = p;
      row.smo = cell_of(smo, svmcore::kkt_report(train, smo.alpha, smo_params));
      row.pbm = cell_of(pbm, svmcore::kkt_report(train, pbm.alpha, pbm_params));
      row.comm_speedup = row.pbm.comm_bytes > 0
                             ? static_cast<double>(row.smo.comm_bytes) /
                                   static_cast<double>(row.pbm.comm_bytes)
                             : 0.0;
      row.time_speedup =
          row.pbm.modeled_time_s > 0 ? row.smo.modeled_time_s / row.pbm.modeled_time_s : 0.0;
      row.sv_agreement = sv_jaccard(smo.alpha, pbm.alpha, base.C);

      const double gap_bound = 2.0 * base.eps + 1e-6;
      gate(row.smo.converged && row.smo.gap <= gap_bound,
           entry.name + " p=" + std::to_string(p) + ": SMO converged to eps");
      gate(row.pbm.converged && row.pbm.gap <= gap_bound,
           entry.name + " p=" + std::to_string(p) + ": PBM converged to the same eps");
      gate(row.sv_agreement >= 0.8,
           entry.name + " p=" + std::to_string(p) + ": SV-set agreement >= 0.8");
      if (p >= 8 && row.comm_speedup >= 2.0) dataset_hit_2x = true;

      const auto solver_cells = [&](const char* label, const SolverCell& c, bool first) {
        table.add_row({first ? entry.name : "", first ? std::to_string(train.size()) : "",
                       first ? std::to_string(p) : "", label,
                       svmutil::TextTable::integer(static_cast<long long>(c.rounds)),
                       svmutil::TextTable::num(static_cast<double>(c.comm_bytes) / 1e6, 2),
                       svmutil::TextTable::num(c.modeled_time_s, 4),
                       svmutil::TextTable::num(c.gap, 6),
                       first ? "" : svmutil::TextTable::num(row.comm_speedup, 2),
                       first ? "" : svmutil::TextTable::num(row.time_speedup, 2),
                       first ? "" : svmutil::TextTable::num(row.sv_agreement, 3)});
      };
      solver_cells("smo", row.smo, true);
      solver_cells("pbm", row.pbm, false);
      rows.push_back(std::move(row));
    }
    if (dataset_hit_2x) ++datasets_with_2x;
  }
  table.print();

  gate(datasets_with_2x >= 2,
       ">= 2x comm-volume reduction vs SMO at p>=8 on at least two zoo datasets (got " +
           std::to_string(datasets_with_2x) + ")");
  std::printf("\ndatasets with >= 2x comm reduction at p >= 8: %d/%zu\n", datasets_with_2x,
              names.size());

  write_json(rows, args.eps, datasets_with_2x, "BENCH_pbm.json");
  if (!strict && !ok) std::printf("(advisory gates failed; rerun with --assert to enforce)\n");
  return strict && !ok ? 1 : 0;
}
