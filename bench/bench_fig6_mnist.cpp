// Figure 6: MNIST scaling. Paper: 60K samples, up to 512 processes; 15x vs
// libsvm-enhanced with Shrink(Best); for 75% of iterations the active set is
// ~20% of the samples; converges in 21K iterations — BELOW the Single50pc
// initial threshold of 30K, so Shrink(Worst) is exactly equivalent to
// Default. This bench verifies that equivalence explicitly.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  const int status = svmbench::run_figure_bench(
      "Figure 6", "mnist", /*scale_hint=*/0.5, {1, 2, 4, 8},
      "15x vs libsvm-enhanced at 512 procs; Worst == Default because the 30K-iteration "
      "threshold exceeds the 21K iterations to convergence",
      args);

  // The paper's MNIST observation: when iterations < N/2, Single50pc never
  // shrinks and must behave identically to Default.
  const auto& entry = svmdata::zoo_entry("mnist");
  const auto train = svmdata::make_train(entry, 0.5 * args.scale);
  const auto params = svmbench::params_for(entry, args.eps);

  svmcore::TrainOptions original;
  original.num_ranks = 4;
  const auto base = svmcore::train(train, params, original);

  svmcore::TrainOptions worst;
  worst.num_ranks = 4;
  worst.heuristic = svmcore::Heuristic::parse("Single50pc");
  const auto shrunk = svmcore::train(train, params, worst);

  const bool threshold_unreached = base.iterations < train.size() / 2;
  std::printf("equivalence check: iterations=%llu threshold=%zu -> %s; "
              "Worst==Default: %s\n",
              static_cast<unsigned long long>(base.iterations), train.size() / 2,
              threshold_unreached ? "threshold never reached" : "threshold reached",
              (shrunk.iterations == base.iterations && shrunk.samples_shrunk == 0) == threshold_unreached
                  ? "as expected"
                  : "UNEXPECTED");
  return status;
}
