// Ablation for §IV-A.2 ("Subsequent Shrinking Threshold Calculation"): the
// paper proposes using the Allreduce'd ACTIVE-SET SIZE as the gap between
// shrink passes ("the size of the working set gives sufficient opportunities
// for samples to be considered at least once") instead of the default choice
// of reusing the initial threshold. This bench compares the two policies
// across heuristics.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = svmbench::parse_args(argc, argv);
  svmbench::print_banner(
      "Ablation - subsequent shrinking threshold (SIV-A.2)",
      "adaptive (active-set size) vs fixed (reuse initial threshold) shrink cadence");

  const auto& entry = svmdata::zoo_entry("forest");
  const auto train = svmdata::make_train(entry, 0.3 * args.scale);
  const auto params = svmbench::params_for(entry, args.eps);
  const int ranks = args.ranks.empty() ? 4 : args.ranks.front();

  std::printf("workload: forest-like n=%zu, p=%d\n\n", train.size(), ranks);

  svmutil::TextTable table({"heuristic", "policy", "shrink passes", "shrunk",
                            "work/rank (kevals)", "recon", "wall s", "train acc %"});
  for (const char* name : {"Multi5pc", "Multi10pc", "Single5pc"}) {
    for (const bool fixed : {false, true}) {
      svmcore::TrainOptions options;
      options.num_ranks = ranks;
      options.heuristic = svmcore::Heuristic::parse(name);
      options.heuristic.fixed_subsequent_threshold = fixed;
      const auto result = svmcore::train(train, params, options);
      std::uint64_t passes = 0;
      for (const auto& s : result.rank_stats) passes = std::max(passes, s.shrink_passes);
      table.add_row({name, fixed ? "fixed" : "adaptive", svmutil::TextTable::integer(passes),
                     svmutil::TextTable::integer(result.samples_shrunk),
                     svmutil::TextTable::integer(
                         static_cast<long long>(result.max_rank_kernel_evaluations / 1000)),
                     svmutil::TextTable::integer(result.reconstructions),
                     svmutil::TextTable::num(result.wall_seconds, 2),
                     svmutil::TextTable::num(100.0 * result.model.accuracy(train), 2)});
    }
  }
  table.print();
  std::printf("\nboth policies must reach the same accuracy; the adaptive policy spaces its\n"
              "shrink passes by the shrinking active-set size, re-testing more often as the\n"
              "problem contracts (the paper's choice).\n");
  return 0;
}
