// Shared harness for the paper-artifact benches. Every bench binary
// regenerates one table or figure from the paper's §V: it runs the relevant
// solver configurations at container scale and prints the same rows/series
// the paper reports, echoing the paper's own numbers for comparison.
//
// Measurement caveat (documented in DESIGN.md): this container has one CPU
// core, so ranks are time-shared threads and wall time cannot drop with p.
// Scaling rows therefore report, per p: iterations, the slowest rank's
// kernel-evaluation count (the per-rank work the paper's speedup comes
// from), wall time, and "modeled s" = per-rank work * lambda + the alpha-
// beta network model — the quantity whose shape mirrors the paper's curves.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/libsvm_like.hpp"
#include "core/trainer.hpp"
#include "data/zoo.hpp"
#include "kernel/kernel_engine.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/table.hpp"

namespace svmbench {

struct BenchArgs {
  double scale = 1.0;          ///< multiplies each bench's default dataset size
  std::vector<int> ranks;      ///< override rank sweep (empty = bench default)
  bool quick = false;          ///< shrink everything for smoke runs
  double eps = 1e-3;
  std::string trace_out;       ///< --trace-out: Chrome trace of the runs
  std::string metrics_out;     ///< --metrics-out: run report of every config
  /// --engine-backend / --engine-flavor: kernel data-path selection for the
  /// solver runs (training enforces f64; the flavor also picks the baseline's
  /// cached Q-row storage). Kept as names so invalid values fail loudly at
  /// conversion time.
  std::string engine_backend = "dense_scatter";
  std::string engine_flavor = "f64";
};

inline std::vector<int> parse_rank_list(const std::string& list) {
  std::vector<int> ranks;
  std::size_t at = 0;
  while (at < list.size()) {
    const std::size_t comma = list.find(',', at);
    ranks.push_back(std::stoi(list.substr(at, comma - at)));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return ranks;
}

/// Parsed flags + the standard BenchArgs. Benches with extra flags (repeats,
/// seeds, --assert, ...) read them from `flags`; everything standard —
/// obs paths, engine selection, scale/ranks/quick/eps — is already applied
/// and filled into `args`.
struct ParsedArgs {
  svmutil::CliFlags flags;
  BenchArgs args;
};

/// One-call flag wiring shared by every bench: appends the standard obs +
/// engine flags (and scale/ranks/quick/eps) to the bench's own flag list,
/// parses argv, applies --log-level, and fills BenchArgs. This is the single
/// copy of the with_engine_flags(with_obs_flags(...)) boilerplate.
inline ParsedArgs parse_args_with(int argc, char** argv, std::vector<std::string> extra) {
  extra.insert(extra.end(), {"scale", "ranks", "quick!", "eps"});
  svmutil::CliFlags flags(argc, argv,
                          svmutil::with_engine_flags(svmutil::with_obs_flags(std::move(extra))));
  const svmutil::ObsPaths obs = svmutil::apply_obs_flags(flags);
  const svmutil::EngineChoice engine = svmutil::apply_engine_flags(flags);
  BenchArgs args;
  args.scale = flags.get_double("scale", 1.0);
  args.quick = flags.get_bool("quick");
  args.eps = flags.get_double("eps", 1e-3);
  args.trace_out = obs.trace_out;
  args.metrics_out = obs.metrics_out;
  args.engine_backend = engine.backend;
  args.engine_flavor = engine.flavor;
  if (flags.has("ranks")) args.ranks = parse_rank_list(flags.get("ranks", ""));
  if (args.quick) args.scale *= 0.25;
  return ParsedArgs{std::move(flags), std::move(args)};
}

inline BenchArgs parse_args(int argc, char** argv) {
  return parse_args_with(argc, argv, {}).args;
}

inline void print_banner(const std::string& artifact, const std::string& paper_summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("================================================================\n");
}

inline svmcore::SolverParams params_for(const svmdata::ZooEntry& entry, double eps) {
  svmcore::SolverParams p;
  p.C = entry.C;
  p.eps = eps;
  p.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  return p;
}

/// BenchArgs-aware variant: also applies the --engine-backend /
/// --engine-flavor selection (name conversion throws on unknown values).
inline svmcore::SolverParams params_for(const svmdata::ZooEntry& entry, const BenchArgs& args) {
  svmcore::SolverParams p = params_for(entry, args.eps);
  p.engine_backend = svmkernel::engine_backend_from_string(args.engine_backend);
  p.engine_flavor = svmkernel::row_flavor_from_string(args.engine_flavor);
  return p;
}

/// One solver configuration on one dataset at one rank count.
struct ScalingRow {
  std::string label;
  int ranks = 0;
  svmcore::TrainResult result;
};

/// Runs {Default, Shrinking(Best)=Multi5pc, Shrinking(Worst)=Single50pc}
/// across `rank_list` — the three bars of Figures 3-7. When `reports` is
/// non-null a run report per configuration is appended (named
/// "<label>/p<ranks>"), ready for svmobs::write_reports.
inline std::vector<ScalingRow> run_scaling(const svmdata::Dataset& train,
                                           const svmcore::SolverParams& params,
                                           const std::vector<int>& rank_list,
                                           std::vector<svmobs::RunReport>* reports = nullptr) {
  const struct {
    const char* label;
    const char* heuristic;
  } configs[] = {{"Default", "Original"},
                 {"Shrink(Best)", "Multi5pc"},
                 {"Shrink(Worst)", "Single50pc"}};
  std::vector<ScalingRow> rows;
  for (const int p : rank_list) {
    for (const auto& config : configs) {
      svmcore::TrainOptions options;
      options.num_ranks = p;
      options.heuristic = svmcore::Heuristic::parse(config.heuristic);
      rows.push_back(ScalingRow{config.label, p, svmcore::train(train, params, options)});
      if (reports != nullptr)
        reports->push_back(svmcore::run_report(rows.back().result, options,
                                               std::string(config.label) + "/p" +
                                                   std::to_string(p)));
    }
  }
  return rows;
}

/// Prints a scaling table with speedups relative to the first configuration
/// at the same rank count (the Default algorithm).
inline void print_scaling_table(const std::vector<ScalingRow>& rows) {
  svmutil::TextTable table({"config", "p", "iters", "work/rank (kevals)", "wall s", "modeled s",
                            "speedup vs Default", "recon s", "shrunk", "streamed MB"});
  double default_modeled = 0.0;
  for (const ScalingRow& row : rows) {
    if (row.label == "Default") default_modeled = row.result.modeled_seconds;
    const double speedup =
        row.result.modeled_seconds > 0 ? default_modeled / row.result.modeled_seconds : 0.0;
    table.add_row({row.label, svmutil::TextTable::integer(row.ranks),
                   svmutil::TextTable::integer(row.result.iterations),
                   svmutil::TextTable::integer(
                       static_cast<long long>(row.result.max_rank_kernel_evaluations / 1000)),
                   svmutil::TextTable::num(row.result.wall_seconds, 2),
                   svmutil::TextTable::num(row.result.modeled_seconds, 3),
                   svmutil::TextTable::num(speedup, 2),
                   svmutil::TextTable::num(row.result.reconstruction_seconds, 3),
                   svmutil::TextTable::integer(row.result.samples_shrunk),
                   // KernelEngine work metric: CSR payload traversed by the
                   // batched gamma-update path, summed over ranks. Shrinking
                   // shows up here directly — fewer active rows, fewer bytes.
                   svmutil::TextTable::num(
                       static_cast<double>(row.result.engine_bytes_streamed) / 1e6, 1)});
  }
  table.print();
}

/// Baseline reference: the libsvm-style solver on the same dataset, reported
/// the way the paper uses "libsvm-enhanced using 16 cores on one node".
inline svmbaseline::BaselineResult run_baseline(const svmdata::Dataset& train,
                                                const svmdata::ZooEntry& entry, double eps) {
  svmbaseline::BaselineOptions options;
  options.C = entry.C;
  options.eps = eps;
  options.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  return svmbaseline::solve_libsvm_like(train, options);
}

/// BenchArgs-aware variant: the --engine-flavor selection picks the
/// baseline's cached Q-row storage (its one flavor-sensitive data path).
inline svmbaseline::BaselineResult run_baseline(const svmdata::Dataset& train,
                                                const svmdata::ZooEntry& entry,
                                                const BenchArgs& args) {
  svmbaseline::BaselineOptions options;
  options.C = entry.C;
  options.eps = args.eps;
  options.kernel = svmkernel::KernelParams::rbf_with_sigma_sq(entry.sigma_sq);
  options.q_flavor = svmkernel::row_flavor_from_string(args.engine_flavor);
  return svmbaseline::solve_libsvm_like(train, options);
}

inline void print_baseline_line(const svmbaseline::BaselineResult& baseline) {
  std::printf(
      "libsvm-enhanced baseline: %.2f s wall, %llu iterations, cache hit rate %.1f%%\n\n",
      baseline.solve_seconds, static_cast<unsigned long long>(baseline.iterations),
      100.0 * baseline.cache_hit_rate);
}

}  // namespace svmbench

namespace svmbench {

/// Complete scaling-figure harness shared by Figures 3-7: generates the
/// dataset at `scale_hint * args.scale`, sweeps the rank list, prints the
/// three-configuration table plus the libsvm-enhanced reference, and echoes
/// the paper's reported claim for shape comparison.
inline int run_figure_bench(const std::string& figure, const std::string& dataset,
                            double scale_hint, std::vector<int> default_ranks,
                            const std::string& paper_claim, const BenchArgs& args) {
  const svmdata::ZooEntry& entry = svmdata::zoo_entry(dataset);
  print_banner(figure + " - " + dataset + " scaling",
               paper_claim + " [paper: n=" + std::to_string(entry.paper_train_size) +
                   ", up to " + std::to_string(entry.paper_processes) + " processes]");

  const double scale = scale_hint * args.scale;
  const svmdata::Dataset train = svmdata::make_train(entry, scale);
  std::printf(
      "container workload: n=%zu, d=%zu, density %.2f%%, C=%g, sigma^2=%g, "
      "engine=%s/%s\n\n",
      train.size(), train.dim(), 100.0 * train.X.density(), entry.C, entry.sigma_sq,
      args.engine_backend.c_str(), args.engine_flavor.c_str());

  const std::vector<int> rank_list = args.ranks.empty() ? default_ranks : args.ranks;
  // Every configuration of the sweep lands on one trace timeline (separated
  // by "solve" spans) and one run-report file, so a figure's whole sweep can
  // be inspected in Perfetto / diffed as JSON in one artifact each.
  if (!args.trace_out.empty()) {
    svmobs::trace_reset();
    svmobs::trace_enable();
  }
  std::vector<svmobs::RunReport> reports;
  const auto rows = run_scaling(train, params_for(entry, args), rank_list,
                                args.metrics_out.empty() ? nullptr : &reports);
  if (!args.trace_out.empty()) {
    svmobs::trace_disable();
    svmobs::trace_write(args.trace_out);
    std::printf("trace -> %s\n", args.trace_out.c_str());
  }
  if (!args.metrics_out.empty()) {
    svmobs::write_reports(args.metrics_out, reports);
    std::printf("metrics -> %s\n", args.metrics_out.c_str());
  }
  print_scaling_table(rows);
  std::printf("\n");

  const auto baseline = run_baseline(train, entry, args);
  print_baseline_line(baseline);

  // Shape checks the paper's figure makes: Best <= Default and Best <= Worst
  // in per-rank work at the largest p.
  const ScalingRow* best = nullptr;
  const ScalingRow* worst = nullptr;
  const ScalingRow* fallback = nullptr;
  for (const auto& row : rows) {
    if (row.ranks != rank_list.back()) continue;
    if (row.label == "Shrink(Best)") best = &row;
    if (row.label == "Shrink(Worst)") worst = &row;
    if (row.label == "Default") fallback = &row;
  }
  if (best != nullptr && worst != nullptr && fallback != nullptr) {
    std::printf("shape check at p=%d: Best work %.0fk <= Default work %.0fk : %s\n",
                rank_list.back(),
                static_cast<double>(best->result.max_rank_kernel_evaluations) / 1000.0,
                static_cast<double>(fallback->result.max_rank_kernel_evaluations) / 1000.0,
                best->result.max_rank_kernel_evaluations <=
                        fallback->result.max_rank_kernel_evaluations
                    ? "OK"
                    : "VIOLATED");
    std::printf("shape check at p=%d: Best modeled %.3fs <= Worst modeled %.3fs : %s\n",
                rank_list.back(), best->result.modeled_seconds, worst->result.modeled_seconds,
                best->result.modeled_seconds <= worst->result.modeled_seconds * 1.05
                    ? "OK"
                    : "INVERTED (container-scale iters~n regime; see EXPERIMENTS.md)");
  }
  return 0;
}

}  // namespace svmbench
