// Scheduler bench: drives the multi-tenant svmsched scheduler with a bursty
// synthetic tenant workload (a hyperparameter grid search plus a one-vs-one
// multiclass lowering) over a shared rank pool, under three deterministic
// fault regimes — none, low (one transient crash + one permanent rank
// death) and high (crashes, deaths and a network delay across several
// ranks). Reports makespan, completed-job latency p50/p99, queue wait and
// the fault ledger per regime, and emits BENCH_scheduler.json.
//
// The contract asserted here (exit status): every job reaches a terminal
// state in every regime; the fault-free regime completes everything with no
// requeues; the LOW regime loses no jobs (faults are absorbed by in-job
// shrinks and requeues, never by dropping accepted work).
//
// Usage: bench_scheduler [--pool=P] [--ranks-per-job=R] [--quick]
//                        [--scale=S] [--trace-out=T] [--metrics-out=M]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/distributed_solver.hpp"
#include "data/synthetic.hpp"
#include "mpisim/fault.hpp"
#include "mpisim/spmd.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace {

struct RegimeRow {
  std::string name;
  std::size_t fault_events = 0;
  svmsched::SchedulerReport report;
};

void write_json(const std::vector<RegimeRow>& rows, int pool, std::size_t jobs,
                const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scheduler\",\n  \"pool_ranks\": %d,\n  \"jobs\": %zu,\n",
               pool, jobs);
  std::fprintf(f, "  \"regimes\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const svmsched::SchedulerReport& r = rows[i].report;
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"fault_events\": %zu,\n"
                 "      \"makespan_s\": %.4f,\n"
                 "      \"latency_p50_s\": %.4f,\n"
                 "      \"latency_p99_s\": %.4f,\n"
                 "      \"queue_wait_p50_s\": %.4f,\n"
                 "      \"jobs_completed\": %d,\n"
                 "      \"jobs_rejected\": %d,\n"
                 "      \"jobs_lost\": %d,\n"
                 "      \"requeues\": %d,\n"
                 "      \"timeouts\": %d,\n"
                 "      \"shrinks\": %d,\n"
                 "      \"pool_ranks_lost\": %zu\n"
                 "    }%s\n",
                 rows[i].name.c_str(), rows[i].fault_events, r.makespan_s, r.latency_p50_s,
                 r.latency_p99_s, r.queue_wait_p50_s, r.completed, r.rejected, r.lost, r.requeues,
                 r.timeouts, r.shrinks, r.pool_ranks_lost.size(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const auto [flags, args] = svmbench::parse_args_with(argc, argv, {"pool", "ranks-per-job"});
  const svmutil::ObsPaths obs{args.trace_out, args.metrics_out};
  const bool quick = args.quick;
  const double scale = flags.get_double("scale", quick ? 0.5 : 1.0);
  const int pool = static_cast<int>(flags.get_int("pool", 8));
  const int ranks_per_job = static_cast<int>(flags.get_int("ranks-per-job", 2));

  svmbench::print_banner(
      "scheduler - multi-tenant training service under fault injection",
      "bursty grid-search + one-vs-one tenants on a shared pool of " + std::to_string(pool) +
          " ranks; faults must shrink or requeue jobs, never lose accepted work");

  // --- tenant workload -------------------------------------------------------
  const auto grid_data = std::make_shared<const svmdata::Dataset>(
      svmdata::synthetic::gaussian_blobs({.n = static_cast<std::size_t>(240 * scale),
                                          .d = 8,
                                          .separation = 2.0,
                                          .label_noise = 0.02,
                                          .seed = 33}));
  const svmdata::MultiClassData multi = svmdata::synthetic::multiclass_blobs(
      {.n = static_cast<std::size_t>(180 * scale), .d = 8, .classes = 3, .seed = 34});

  svmsched::JobDefaults grid_defaults;
  grid_defaults.tenant = "grid-search";
  grid_defaults.ranks = ranks_per_job;
  const std::vector<double> c_values = quick ? std::vector<double>{1.0, 8.0}
                                             : std::vector<double>{1.0, 4.0, 16.0};
  const std::vector<double> gamma_values = {0.25, 1.0};
  std::vector<svmsched::JobSpec> jobs = svmsched::grid_search_jobs(
      grid_data, c_values, gamma_values, svmcore::SolverParams{}, grid_defaults);

  svmsched::JobDefaults ovo_defaults;
  ovo_defaults.tenant = "one-vs-one";
  ovo_defaults.ranks = ranks_per_job;
  ovo_defaults.priority = 1;  // the interactive tenant jumps the batch grid
  const std::vector<svmsched::JobSpec> ovo = svmsched::one_vs_one_jobs(
      multi, svmcore::SolverParams{}, ovo_defaults, static_cast<int>(jobs.size()));
  jobs.insert(jobs.end(), ovo.begin(), ovo.end());

  svmsched::BurstyTrace trace;
  trace.seed = 9;
  trace.mean_gap_s = 0.004;
  svmsched::assign_bursty_arrivals(jobs, trace);

  // Rank-local op horizon of one grid solve bounds fault placement: pool
  // ranks count ops only inside jobs, so op/2 lands mid-solve of whichever
  // job the victim rank is serving when the count is reached.
  std::uint64_t horizon = 0;
  {
    svmmpi::FaultInjector probe{svmmpi::FaultPlan{}};
    svmmpi::run_spmd(
        ranks_per_job,
        [&](svmmpi::Comm& comm) {
          svmcore::DistributedConfig config;
          svmcore::DistributedSolver solver(comm, *grid_data, config);
          (void)solver.solve();
        },
        svmmpi::NetModel{}, nullptr, &probe);
    horizon = probe.ops(ranks_per_job - 1);
  }
  std::printf("workload: %zu jobs (%zu grid + %zu ovo), pool=%d, op horizon=%llu\n\n",
              jobs.size(), jobs.size() - ovo.size(), ovo.size(), pool,
              static_cast<unsigned long long>(horizon));

  // --- fault regimes ---------------------------------------------------------
  struct Regime {
    const char* name;
    svmmpi::FaultPlan plan;
  };
  std::vector<Regime> regimes;
  regimes.push_back({"none", svmmpi::FaultPlan{}});
  regimes.push_back({"low", svmmpi::FaultPlan{}
                                .crash(1, horizon / 2)
                                .die(pool > 5 ? 5 : pool - 1, horizon / 2)});
  regimes.push_back({"high", svmmpi::FaultPlan{}
                                 .crash(1, horizon / 3)
                                 .crash(3 % pool, horizon / 2)
                                 .crash(2 % pool, 2 * horizon / 3)
                                 .delay(0, horizon / 4, 0.02)
                                 .die(pool > 5 ? 5 : pool - 1, horizon / 2)
                                 .die(pool > 6 ? 6 : pool - 1, 2 * horizon / 3)});

  svmutil::TextTable table({"regime", "faults", "makespan s", "p50 s", "p99 s", "queue p50 s",
                            "done", "rejected", "lost", "requeues", "shrinks", "ranks lost"});
  std::vector<RegimeRow> rows;
  bool ok = true;
  for (const Regime& regime : regimes) {
    svmsched::SchedulerOptions options;
    options.pool_ranks = pool;
    options.net_model.timeout_s = 10.0;
    options.fault_plan = regime.plan;
    options.backoff_base_s = 0.002;
    if (std::string(regime.name) == "low") {
      // The low regime carries the observability artifacts: it exercises the
      // full path (spans, shrink instants, requeue accounting).
      options.trace_path = obs.trace_out;
      options.metrics_path = obs.metrics_out;
    }
    const svmsched::SchedulerReport report = svmsched::run_scheduler(jobs, options);

    const int terminal = report.completed + report.rejected + report.lost;
    if (terminal != static_cast<int>(jobs.size())) ok = false;
    if (std::string(regime.name) == "none" &&
        (report.lost != 0 || report.requeues != 0 || report.shrinks != 0))
      ok = false;
    if (std::string(regime.name) == "low" && report.lost != 0) ok = false;

    table.add_row({regime.name,
                   svmutil::TextTable::integer(static_cast<long long>(regime.plan.events().size())),
                   svmutil::TextTable::num(report.makespan_s, 3),
                   svmutil::TextTable::num(report.latency_p50_s, 3),
                   svmutil::TextTable::num(report.latency_p99_s, 3),
                   svmutil::TextTable::num(report.queue_wait_p50_s, 3),
                   svmutil::TextTable::integer(report.completed),
                   svmutil::TextTable::integer(report.rejected),
                   svmutil::TextTable::integer(report.lost),
                   svmutil::TextTable::integer(report.requeues),
                   svmutil::TextTable::integer(report.shrinks),
                   svmutil::TextTable::integer(static_cast<long long>(
                       report.pool_ranks_lost.size()))});
    rows.push_back({regime.name, regime.plan.events().size(), report});
  }
  table.print();

  const RegimeRow& low = rows[1];
  std::printf("\nlow-rate fault regime lost %d job(s); accepted work %s\n", low.report.lost,
              low.report.lost == 0 ? "fully preserved" : "DROPPED");
  write_json(rows, pool, jobs.size(), "BENCH_scheduler.json");
  return ok ? 0 : 1;
}
