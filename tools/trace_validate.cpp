// Structural validator for svmobs artifacts; exits non-zero when a file
// violates the contract (see src/obs/validate.hpp for the checks).
//
//   trace_validate trace.json [trace2.json ...]
//       [--require-span NAME[,NAME...]]   span names that must be present
//       [--min-counter-tracks N]          distinct counter tracks required
//       [--allow-dangling-flows]          relax flow-integrity strictness
//   trace_validate --metrics report.json [report2.json ...]
//
// Used by scripts/check.sh --obs to gate the traced training run: a trace
// must be valid Chrome trace-event JSON with monotonic per-rank timestamps,
// balanced begin/end spans, every required span and enough counter tracks.
// Flow events are checked strictly by default (unique ids, every start
// finished on another rank); crash-chaos lanes pass --allow-dangling-flows
// because flows into killed ranks legitimately never finish.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/validate.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  try {
    const svmutil::CliFlags flags(
        argc, argv,
        {"metrics!", "require-span", "min-counter-tracks", "allow-dangling-flows!"});
    if (flags.positional().empty()) {
      std::fprintf(stderr,
                   "usage: %s [--metrics] [--require-span a,b,..] [--min-counter-tracks N] "
                   "file.json...\n",
                   flags.program().c_str());
      return 2;
    }

    std::vector<std::string> required_spans;
    const std::string spans_list = flags.get("require-span", "");
    std::size_t at = 0;
    while (at < spans_list.size()) {
      const std::size_t comma = spans_list.find(',', at);
      required_spans.push_back(spans_list.substr(at, comma - at));
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
    const auto min_counters = static_cast<std::size_t>(flags.get_int("min-counter-tracks", 0));

    bool all_ok = true;
    for (const std::string& path : flags.positional()) {
      const std::string json = svmobs::read_file(path);
      const svmobs::ValidationResult result =
          flags.get_bool("metrics")
              ? svmobs::validate_metrics(json)
              : svmobs::validate_trace(json, required_spans, min_counters,
                                       /*strict_flows=*/!flags.get_bool("allow-dangling-flows"));
      if (result.ok()) {
        if (flags.get_bool("metrics"))
          std::printf("%s: OK (%zu runs)\n", path.c_str(), result.runs);
        else
          std::printf(
              "%s: OK (%zu events, %zu tracks, %zu spans, %zu counter tracks, "
              "%zu flows, %zu dangling)\n",
              path.c_str(), result.events, result.tracks, result.spans, result.counter_tracks,
              result.flows, result.dangling_flows);
      } else {
        all_ok = false;
        std::fprintf(stderr, "%s: INVALID (%zu errors)\n", path.c_str(), result.errors.size());
        for (const std::string& error : result.errors)
          std::fprintf(stderr, "  %s\n", error.c_str());
      }
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
