// bench_diff: regression gate over two BENCH_*.json artifacts (baseline vs
// candidate). Walks both trees in lockstep, pairing array elements by index
// and object members by key, and compares every numeric leaf:
//
//   - rate keys (*per_s*, *per_sec*, *throughput*, *speedup*) are matched
//     first and are "higher is better" — before the *_s time suffix, so
//     pairs_per_s is not mistaken for a duration;
//   - metrics whose key signals "lower is better" (times: *_s, *_seconds,
//     wall/latency/makespan/overhead; losses and fault activity: *lost,
//     *rejected, *restarts, *requeues, *timeouts, *mismatch*,
//     *disagreement*, *shed*, *expired*, *depth*, *degraded*, *retries*,
//     *hedge*, *failover*, *quarantine*, *shrink*) regress when the
//     candidate rises more than --tolerance (relative, against
//     max(|base|, floor));
//   - volumes and counts-to-convergence (*comm_bytes*, *bytes*, *rounds*,
//     *modeled_time*) are lower-better — the BENCH_pbm.json axes;
//   - metrics whose key signals "higher is better" (*completed*,
//     *accuracy*, *match*, *agreement*) regress when it falls;
//   - booleans regress when true flips to false (quality predicates like
//     matches_fault_free);
//   - a numeric leaf whose key matches NO direction rule is a hard failure
//     the moment it drifts: an unclassifiable metric cannot be gated, so it
//     must be added to the direction table rather than silently skipped.
//
// Exit status: 0 = no regressions, 1 = at least one regression beyond
// tolerance, 2 = usage/parse error. Structural mismatches (missing keys,
// shorter arrays) are regressions: a benchmark that silently stopped
// reporting a metric must not pass the gate.
//
// Usage: bench_diff <baseline.json> <candidate.json> [--tolerance=0.15]
//                   [--list]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/cli.hpp"

namespace {

struct Options {
  double tolerance = 0.15;  ///< relative rise/fall allowed on better-ness axes
  bool list_all = false;    ///< print every compared leaf, not just drift
};

struct Outcome {
  int regressions = 0;
  int improvements = 0;
  int drifted = 0;
  int compared = 0;
};

[[nodiscard]] bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Direction heuristic keyed on the LEAF key only (lowercased). Matching the
/// full path would let an enclosing object's name override the metric's own:
/// "degraded.agreement_pos" must read as an agreement (higher-better), not be
/// dragged lower-better by the "degraded" section it lives in.
enum class Direction { lower_better, higher_better, neutral };

[[nodiscard]] Direction direction_of(const std::string& path) {
  const std::size_t dot = path.find_last_of('.');
  const std::string leaf = dot == std::string::npos ? path : path.substr(dot + 1);
  std::string p;
  p.reserve(leaf.size());
  for (const char c : leaf) p += static_cast<char>(std::tolower(c));
  // Rates must win before the generic "_s" time suffix: "pairs_per_s" and
  // "evals_per_s_throughput" are higher-is-better despite ending in _s.
  for (const char* k : {"per_s", "per_sec", "throughput", "speedup"})
    if (contains(p, k)) return Direction::higher_better;
  // Attribution axes from trace_analyze / the obs.round_* gauges: a larger
  // share of the round spent computing is the goal; waiting, imbalance and
  // blocked-on-peer time are the costs.
  if (contains(p, "compute_fraction")) return Direction::higher_better;
  for (const char* k : {"imbalance", "wait", "blocked", "straggler"})
    if (contains(p, k)) return Direction::lower_better;
  for (const char* k : {"_s", "seconds", "wall", "latency", "makespan", "overhead", "queue_wait"})
    if (contains(p, k)) return Direction::lower_better;
  // Volumes and round counts (the BENCH_pbm.json axes): fewer communicated
  // bytes and fewer outer rounds to the same gap are the whole point.
  for (const char* k : {"comm_bytes", "bytes", "rounds", "modeled_time"})
    if (contains(p, k)) return Direction::lower_better;
  for (const char* k : {"lost", "rejected", "restart", "requeue", "timeout", "mismatch", "delta",
                        "replayed", "disagreement", "shed", "expired", "depth", "degraded",
                        "retries", "hedge", "failover", "quarantine", "shrink", "fault_events"})
    if (contains(p, k)) return Direction::lower_better;
  for (const char* k : {"completed", "accuracy", "match", "converged", "agreement", "identical"})
    if (contains(p, k)) return Direction::higher_better;
  return Direction::neutral;
}

void report(const char* tag, const std::string& path, double base, double cand) {
  std::printf("  %-10s %-56s %14.6g -> %-14.6g\n", tag, path.c_str(), base, cand);
}

void diff_value(const std::string& path, const svmobs::JsonValue& base,
                const svmobs::JsonValue& cand, const Options& opt, Outcome& out);

void diff_number(const std::string& path, double base, double cand, const Options& opt,
                 Outcome& out) {
  ++out.compared;
  if (base == cand) {
    if (opt.list_all) report("ok", path, base, cand);
    return;
  }
  const Direction dir = direction_of(path);
  // A metric whose direction the heuristic cannot classify must not drift
  // silently past the gate: there is no way to tell an improvement from a
  // regression. Teach direction_of the key (or rename the metric so an
  // existing rule matches) — that is a one-line change; an unguarded metric
  // sliding for months is not.
  if (dir == Direction::neutral) {
    ++out.regressions;
    report("REGRESSED", path, base, cand);
    std::printf("             ^ unknown direction for this key; add it to "
                "bench_diff's direction_of table\n");
    return;
  }
  // Relative drift with an absolute floor: sub-millisecond timing jitter on
  // near-zero baselines must not trip the gate.
  const double floor = contains(path, "_s") || contains(path, "seconds") ? 0.05 : 1.0;
  const double scale = std::max(std::abs(base), floor);
  const double drift = (cand - base) / scale;
  const bool worse = (dir == Direction::lower_better && drift > opt.tolerance) ||
                     (dir == Direction::higher_better && -drift > opt.tolerance);
  const bool better = (dir == Direction::lower_better && -drift > opt.tolerance) ||
                      (dir == Direction::higher_better && drift > opt.tolerance);
  if (worse) {
    ++out.regressions;
    report("REGRESSED", path, base, cand);
  } else if (better) {
    ++out.improvements;
    report("improved", path, base, cand);
  } else {
    ++out.drifted;
    if (opt.list_all) report("drift", path, base, cand);
  }
}

void diff_value(const std::string& path, const svmobs::JsonValue& base,
                const svmobs::JsonValue& cand, const Options& opt, Outcome& out) {
  using svmobs::JsonType;
  if (base.type != cand.type) {
    ++out.regressions;
    std::printf("  REGRESSED  %s: type changed\n", path.c_str());
    return;
  }
  switch (base.type) {
    case JsonType::number:
      diff_number(path, base.number, cand.number, opt, out);
      break;
    case JsonType::boolean:
      ++out.compared;
      if (base.boolean != cand.boolean) {
        // A quality predicate flipping true -> false is always a regression.
        if (base.boolean) {
          ++out.regressions;
          std::printf("  REGRESSED  %s: true -> false\n", path.c_str());
        } else {
          ++out.improvements;
          std::printf("  improved   %s: false -> true\n", path.c_str());
        }
      } else if (opt.list_all) {
        std::printf("  ok         %s: %s\n", path.c_str(), base.boolean ? "true" : "false");
      }
      break;
    case JsonType::string:
      if (base.string != cand.string)
        std::printf("  note       %s: \"%s\" -> \"%s\"\n", path.c_str(), base.string.c_str(),
                    cand.string.c_str());
      break;
    case JsonType::array: {
      if (cand.array.size() < base.array.size()) {
        ++out.regressions;
        std::printf("  REGRESSED  %s: %zu entries -> %zu (rows vanished)\n", path.c_str(),
                    base.array.size(), cand.array.size());
      } else if (cand.array.size() > base.array.size()) {
        std::printf("  note       %s: %zu entries -> %zu\n", path.c_str(), base.array.size(),
                    cand.array.size());
      }
      const std::size_t n = std::min(base.array.size(), cand.array.size());
      for (std::size_t i = 0; i < n; ++i) {
        // Prefer a human row label over a bare index when the row has one.
        std::string label = "[" + std::to_string(i) + "]";
        for (const char* key : {"name", "policy", "dataset"}) {
          const svmobs::JsonValue* tag = base.array[i].find(key);
          if (tag != nullptr && tag->is(JsonType::string)) {
            label = "[" + tag->string + "]";
            break;
          }
        }
        diff_value(path + label, base.array[i], cand.array[i], opt, out);
      }
      break;
    }
    case JsonType::object:
      for (const auto& [key, value] : base.object) {
        const svmobs::JsonValue* other = cand.find(key);
        if (other == nullptr) {
          ++out.regressions;
          std::printf("  REGRESSED  %s.%s: metric vanished from candidate\n", path.c_str(),
                      key.c_str());
          continue;
        }
        diff_value(path.empty() ? key : path + "." + key, value, *other, opt, out);
      }
      for (const auto& [key, value] : cand.object)
        if (base.find(key) == nullptr)
          std::printf("  note       %s.%s: new metric in candidate\n", path.c_str(), key.c_str());
      break;
    case JsonType::null:
      break;
  }
}

[[nodiscard]] std::string slurp(const char* file_path) {
  std::ifstream in(file_path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string("cannot open ") + file_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  const svmutil::CliFlags flags(argc, argv, {"tolerance", "list!"});
  const auto& files = flags.positional();
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--tolerance=0.15] [--list]\n");
    return 2;
  }
  Options opt;
  opt.tolerance = flags.get_double("tolerance", 0.15);
  opt.list_all = flags.get_bool("list");

  svmobs::JsonValue base;
  svmobs::JsonValue cand;
  try {
    base = svmobs::parse_json(slurp(files[0].c_str()));
    cand = svmobs::parse_json(slurp(files[1].c_str()));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_diff: %s\n", error.what());
    return 2;
  }

  std::printf("bench_diff: %s vs %s (tolerance %.0f%%)\n", files[0].c_str(), files[1].c_str(),
              opt.tolerance * 100.0);
  Outcome out;
  diff_value("", base, cand, opt, out);
  std::printf(
      "\n%d leaves compared: %d regression(s), %d improvement(s), %d within-tolerance drift(s)\n",
      out.compared, out.regressions, out.improvements, out.drifted);
  return out.regressions > 0 ? 1 : 0;
}
