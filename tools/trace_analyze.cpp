// Causal trace analyzer: rebuilds the cross-rank happens-before DAG from the
// flow events in a svmobs trace, attributes every round's wall time to
// compute / comm / blocked-on-peer / imbalance, walks the per-round critical
// path and ranks stragglers (see src/obs/analyze.hpp for the model).
//
//   trace_analyze trace.json
//       [--out analysis.json]    write the svmobs.analysis.v1 report
//       [--json]                 print the report to stdout instead of a table
//       [--assert]               gate: attribution must close to 100% within
//                                --tolerance on every round, and at least one
//                                round must show nonzero comm on EVERY
//                                participating rank (proves the flow edges
//                                actually bound sender to receiver)
//       [--tolerance F]          closure tolerance, default 0.02 (2%)
//
// Used by scripts/check.sh --obs on the p=8 PBM traced run.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "obs/analyze.hpp"
#include "obs/validate.hpp"
#include "util/cli.hpp"

namespace {

/// --assert: closure within tolerance per round, plus one round where every
/// participating rank spent nonzero time in communication.
bool check_assertions(const svmobs::TraceAnalysis& analysis, double tolerance) {
  bool ok = true;
  if (analysis.rounds.empty()) {
    std::fprintf(stderr, "assert: trace contains no round markers\n");
    return false;
  }
  for (const svmobs::RoundAnalysis& round : analysis.rounds) {
    if (std::fabs(round.closure - 1.0) > tolerance) {
      std::fprintf(stderr, "assert: round %llu (%s) closure %.4f outside 1±%.3f\n",
                   static_cast<unsigned long long>(round.seq), round.category.c_str(),
                   round.closure, tolerance);
      ok = false;
    }
  }
  bool any_full_comm_round = false;
  for (const svmobs::RoundAnalysis& round : analysis.rounds) {
    if (round.ranks.size() < 2) continue;
    bool all_comm = true;
    for (const svmobs::RankAttribution& a : round.ranks)
      all_comm = all_comm && (a.comm_s + a.blocked_s) > 0.0;
    any_full_comm_round = any_full_comm_round || all_comm;
  }
  if (!any_full_comm_round) {
    std::fprintf(stderr,
                 "assert: no round has nonzero comm on every participating rank "
                 "(flow correlation appears broken)\n");
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const svmutil::CliFlags flags(argc, argv, {"out", "json!", "assert!", "tolerance"});
    if (flags.positional().size() != 1) {
      std::fprintf(stderr,
                   "usage: %s trace.json [--out analysis.json] [--json] [--assert] "
                   "[--tolerance F]\n",
                   flags.program().c_str());
      return 2;
    }
    const std::string& path = flags.positional().front();
    const svmobs::TraceAnalysis analysis = svmobs::analyze_trace(svmobs::read_file(path));
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: ANALYSIS FAILED (%zu errors)\n", path.c_str(),
                   analysis.errors.size());
      for (const std::string& error : analysis.errors)
        std::fprintf(stderr, "  %s\n", error.c_str());
      return 1;
    }

    if (flags.get_bool("json")) {
      std::printf("%s\n", svmobs::analysis_json(analysis).c_str());
    } else {
      std::printf("%s: %zu round(s), %zu flow edge(s), compute fraction %.3f\n\n", path.c_str(),
                  analysis.rounds.size(), analysis.flow_edges, analysis.compute_fraction());
      std::fputs(svmobs::analysis_table(analysis).c_str(), stdout);
    }

    const std::string out_path = flags.get("out", "");
    if (!out_path.empty()) {
      std::ofstream out(out_path, std::ios::binary);
      out << svmobs::analysis_json(analysis) << '\n';
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", out_path.c_str());
    }

    if (flags.get_bool("assert")) {
      const double tolerance = flags.get_double("tolerance", 0.02);
      if (!check_assertions(analysis, tolerance)) return 1;
      std::printf("assert: OK (%zu rounds close within %.1f%%)\n", analysis.rounds.size(),
                  tolerance * 100.0);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
